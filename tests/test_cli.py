"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

import json

from repro.api.registry import model_names, scheduler_names
from repro.cli import build_parser, main
from repro.core.swf import parse_swf, write_swf
from repro.workloads import Lublin99Model
from tests.conftest import make_job, make_workload


@pytest.fixture
def trace_path(tmp_path):
    workload = Lublin99Model(machine_size=32).generate_with_load(80, 0.6, seed=2)
    path = tmp_path / "trace.swf"
    write_swf(workload, path)
    return path


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        args = parser.parse_args(["validate", "x.swf"])
        assert args.command == "validate"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rosters_cover_documented_names(self):
        # The CLI resolves through the registries: every registered policy and
        # model is reachable, including the priority family and gang/grid.
        assert {"fcfs", "first-fit", "sjf", "ljf", "wfp", "easy", "conservative",
                "gang", "grid"} <= set(scheduler_names())
        assert {"lublin99", "sessions"} <= set(model_names())


class TestValidateAndStats:
    def test_validate_clean_trace_exits_zero(self, trace_path, capsys):
        assert main(["validate", str(trace_path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_validate_broken_trace_exits_nonzero(self, tmp_path, capsys):
        broken = make_workload([make_job(5, submit=100)])  # bad numbering + origin
        path = tmp_path / "broken.swf"
        write_swf(broken, path)
        assert main(["validate", str(path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_stats_prints_table(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "offered_load" in out and "mean_runtime" in out


class TestGenerateAndSimulate:
    def test_generate_model_with_target_load(self, tmp_path, capsys):
        out_path = tmp_path / "model.swf"
        code = main(
            ["generate", "lublin99", str(out_path), "--jobs", "100",
             "--machine-size", "64", "--load", "0.7", "--seed", "3"]
        )
        assert code == 0
        workload = parse_swf(out_path)
        assert len(workload) == 100
        assert workload.offered_load(64) == pytest.approx(0.7, rel=0.1)

    def test_generate_accepts_spec_kwargs(self, tmp_path):
        out_path = tmp_path / "spec.swf"
        assert main(["generate", "lublin99:jobs=50,seed=1", str(out_path),
                     "--machine-size", "32"]) == 0
        assert len(parse_swf(out_path)) == 50

    def test_generate_archive(self, tmp_path):
        out_path = tmp_path / "ctc.swf"
        assert main(["generate", "ctc-sp2", str(out_path), "--jobs", "150", "--seed", "1"]) == 0
        assert len(parse_swf(out_path)) == 150

    def test_generate_unknown_source_fails(self, tmp_path):
        assert main(["generate", "not-a-model", str(tmp_path / "x.swf")]) == 2

    def test_simulate_prints_metrics(self, trace_path, capsys):
        assert main(["simulate", str(trace_path), "--policy", "easy"]) == 0
        out = capsys.readouterr().out
        assert "easy-backfill" in out
        assert "utilization" in out

    def test_simulate_scheduler_flag_is_an_alias(self, trace_path, capsys):
        assert main(["simulate", str(trace_path), "--scheduler", "fcfs"]) == 0
        assert "fcfs" in capsys.readouterr().out

    def test_simulate_accepts_priority_spec(self, trace_path, capsys):
        assert main(["simulate", str(trace_path), "--policy", "sjf:strict=true"]) == 0
        assert "sjf" in capsys.readouterr().out

    def test_simulate_accepts_gang_spec(self, trace_path, capsys):
        assert main(["simulate", str(trace_path), "--policy", "gang:slots=3"]) == 0
        assert "gang-3slots" in capsys.readouterr().out

    def test_simulate_accepts_model_spec_workload(self, capsys):
        code = main(
            ["simulate", "lublin99:jobs=40,seed=2", "--policy", "easy",
             "--machine-size", "64"]
        )
        assert code == 0
        assert "easy-backfill" in capsys.readouterr().out

    def test_simulate_metric_selection(self, trace_path, capsys):
        assert main(
            ["simulate", str(trace_path), "--policy", "easy",
             "--metrics", "mean_wait,utilization"]
        ) == 0
        out = capsys.readouterr().out
        assert "mean_wait" in out and "utilization" in out
        assert "makespan" not in out

    def test_simulate_unknown_policy_fails_with_suggestion(self, trace_path, capsys):
        assert main(["simulate", str(trace_path), "--policy", "easyy"]) == 2
        assert "did you mean" in capsys.readouterr().err


class TestRunScenarios:
    def test_run_scenario_file(self, trace_path, tmp_path, capsys):
        scenarios = [
            {"workload": str(trace_path), "policy": "fcfs", "name": "baseline"},
            {"workload": str(trace_path), "policy": "easy", "name": "backfilled"},
        ]
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps(scenarios))
        assert main(["run", str(path), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "backfilled" in out

    def test_run_single_scenario_object(self, trace_path, tmp_path, capsys):
        path = tmp_path / "one.json"
        path.write_text(json.dumps({"workload": str(trace_path)}))
        assert main(["run", str(path)]) == 0
        assert "easy-backfill" in capsys.readouterr().out

    def test_run_bad_scenario_field_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"workload": "lublin99", "polcy": "easy"}))
        assert main(["run", str(path)]) == 2
        assert "unknown scenario field" in capsys.readouterr().err

    def test_outages_command_writes_log(self, tmp_path, capsys):
        out_path = tmp_path / "outages.log"
        code = main(["outages", "64", str(30 * 24 * 3600), str(out_path), "--seed", "4"])
        assert code == 0
        assert out_path.exists()
        assert "outages" in capsys.readouterr().out

    def test_convert_command(self, tmp_path, capsys):
        raw = tmp_path / "raw.csv"
        raw.write_text(
            "job_id,user,group,queue,submit_ts,start_ts,end_ts,processors\n"
            "1,alice,phys,batch,100,150,300,8\n"
            "2,bob,chem,batch,120,300,500,4\n"
        )
        out_path = tmp_path / "converted.swf"
        assert main(["convert", str(raw), str(out_path), "--computer", "Test SP2"]) == 0
        converted = parse_swf(out_path)
        assert len(converted) == 2
        assert converted.header.computer == "Test SP2"


class TestBenchCommands:
    def test_bench_run_smoke_and_cache_reuse(self, tmp_path, capsys):
        store = tmp_path / "store"
        json_out = tmp_path / "run.json"
        markdown_out = tmp_path / "run.md"
        assert main(["bench", "run", "smoke", "--store", str(store),
                     "--json", str(json_out), "--markdown", str(markdown_out)]) == 0
        out = capsys.readouterr().out
        assert "suite 'smoke'" in out and "±" in out
        first = json.loads(json_out.read_text())
        assert first["cache_misses"] == len(first["cases"]) * first["cases"][0]["seeds"]
        assert "# Benchmark suite `smoke`" in markdown_out.read_text()
        # Second invocation is served entirely from the store.
        assert main(["bench", "run", "smoke", "--store", str(store),
                     "--json", str(json_out)]) == 0
        second = json.loads(json_out.read_text())
        assert second["cache_misses"] == 0
        assert second["cache_hits"] == first["cache_misses"]
        assert second["cases"] == first["cases"]

    def test_bench_compare_prints_verdict(self, tmp_path, capsys):
        assert main(["bench", "compare", "fcfs", "backfill", "--suite", "smoke",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "fcfs vs backfill" in out
        assert "confidence" in out

    def test_bench_report_aggregates_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["bench", "run", "smoke", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "`smoke`" in out and "±" in out

    def test_bench_unknown_suite_fails_with_suggestion(self, tmp_path, capsys):
        assert main(["bench", "run", "smokey", "--store", str(tmp_path)]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_bench_run_timings_flag(self, tmp_path, capsys):
        json_out = tmp_path / "run.json"
        assert main(["bench", "run", "smoke", "--store", str(tmp_path / "store"),
                     "--timings", "--json", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "Timing breakdown" in out and "simulate" in out
        payload = json.loads(json_out.read_text())
        assert payload["timings"]["total_seconds"] >= 0
        assert "simulated" in payload["served"]

    def test_bench_report_timings_column(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["bench", "run", "smoke", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--store", str(store), "--timings"]) == 0
        assert "run seconds" in capsys.readouterr().out

    def test_bad_log_level_rejected(self, capsys):
        import os

        os.environ["REPRO_LOG"] = "shouty"
        try:
            assert main(["bench", "report", "--store", "/tmp/nonexistent"]) == 2
            assert "unknown log level" in capsys.readouterr().err
        finally:
            del os.environ["REPRO_LOG"]


class TestTraceCommands:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "trace-cache"))

    def test_ls_lists_the_catalog(self, capsys):
        assert main(["trace", "ls"]) == 0
        out = capsys.readouterr().out
        for name in ("ctc-sp2", "nasa-ipsc", "sdsc-paragon", "lanl-cm5"):
            assert name in out

    def test_info_prints_digest_and_pipeline(self, capsys):
        assert main(["trace", "info", "ctc-sp2,load=1.2,slice=0:7d", "--jobs", "80"]) == 0
        out = capsys.readouterr().out
        assert "digest:" in out and "'op': 'load'" in out and "'op': 'slice'" in out

    def test_build_reports_miss_then_hit(self, capsys):
        spec = "ctc-sp2,jobs=60,load=0.9"
        assert main(["trace", "build", spec]) == 0
        first = capsys.readouterr().out
        assert "built and cached" in first
        assert main(["trace", "build", spec]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        digest = lambda text: next(
            line.split()[1] for line in text.splitlines() if line.startswith("digest ")
        )
        assert digest(first) == digest(second)

    def test_build_writes_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "built.swf"
        assert main(["trace", "build", "ctc-sp2,jobs=40", "--output", str(out_path)]) == 0
        assert len(parse_swf(out_path)) == 40

    def test_bad_spec_exits_nonzero(self, capsys):
        assert main(["trace", "info", "ctc-spp2"]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_simulate_accepts_trace_specs(self, capsys):
        code = main(["simulate", "trace:ctc-sp2,jobs=60,load=0.8", "--policy", "easy"])
        assert code == 0
        assert "easy-backfill" in capsys.readouterr().out

    def test_file_trace_rejects_jobs_and_seed_flags(self, trace_path, capsys):
        assert main(["trace", "info", str(trace_path), "--jobs", "5"]) == 2
        assert "do not apply" in capsys.readouterr().err
        assert main(["trace", "build", str(trace_path), "--seed", "9"]) == 2
        assert "do not apply" in capsys.readouterr().err
        assert main(["trace", "info", str(trace_path)]) == 0


class TestGCCommands:
    def _seed_store(self, tmp_path):
        from repro.api import Scenario, run
        from repro.bench.store import ResultStore, StoredResult, result_key

        store = ResultStore(tmp_path / "store")
        scenario = Scenario(workload="uniform", jobs=20, machine_size=16,
                            load=0.5, seed=1)
        key = result_key(scenario)
        store.put(StoredResult(key=key, scenario=scenario,
                               report=run(scenario).report, extra={}))
        return store, key

    def test_bench_gc_keeps_fresh_entries(self, tmp_path, capsys):
        store, key = self._seed_store(tmp_path)
        assert main(["bench", "gc", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out and "removed 0" in out
        assert key in store

    def test_bench_gc_evicts_stale_and_respects_dry_run(self, tmp_path, capsys):
        store, key = self._seed_store(tmp_path)
        path = store.path_for(key)
        record = json.loads(path.read_text())
        record["code"] = "repro-0.0+store-v0"
        path.write_text(json.dumps(record))

        assert main(["bench", "gc", "--store", str(store.root),
                     "--dry-run"]) == 0
        assert "would remove 1 (1 stale)" in capsys.readouterr().out
        assert key in store

        assert main(["bench", "gc", "--store", str(store.root)]) == 0
        assert "removed 1 (1 stale)" in capsys.readouterr().out
        assert key not in store

        assert main(["bench", "gc", "--store", str(store.root),
                     "--max-age-days", "30"]) == 0
        assert "scanned 0" in capsys.readouterr().out

    def test_trace_gc_round_trip(self, tmp_path, monkeypatch, capsys):
        cache_root = tmp_path / "trace-cache"
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(cache_root))
        assert main(["trace", "build", "ctc-sp2,jobs=40,seed=2"]) == 0
        capsys.readouterr()

        assert main(["trace", "gc"]) == 0
        assert "kept 1" in capsys.readouterr().out

        # Break the sidecar: gc treats the artifact as corrupt and evicts it.
        sidecar = next(cache_root.glob("*/*.json"))
        sidecar.unlink()
        assert main(["trace", "gc", "--cache", str(cache_root)]) == 0
        assert "removed 1 (1 corrupt)" in capsys.readouterr().out
        assert not list(cache_root.glob("*/*.swf"))


class TestServeCommand:
    def test_parser_defaults_and_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8765)
        assert (args.workers, args.queue_limit) == (2, 8)
        assert args.run_workers is None and args.store is None
        assert args.no_cache is False

        args = parser.parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0", "--workers", "4",
             "--queue-limit", "2", "--run-workers", "3",
             "--store", "/tmp/s", "--no-cache"]
        )
        assert (args.host, args.port, args.workers) == ("0.0.0.0", 0, 4)
        assert (args.queue_limit, args.run_workers) == (2, 3)
        assert args.store == "/tmp/s" and args.no_cache is True

    def test_unbindable_host_exits_nonzero(self, tmp_path, capsys):
        # 192.0.2.1 (TEST-NET-1) is never a local interface, so the bind
        # fails immediately — no DNS lookup involved.
        code = main(["serve", "--host", "192.0.2.1", "--port", "0",
                     "--store", str(tmp_path / "store")])
        assert code == 2
        assert capsys.readouterr().err.strip()
