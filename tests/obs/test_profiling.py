"""Tests for the cProfile wrapper and the ``repro profile`` command."""

from __future__ import annotations

from repro.cli import main
from repro.obs.profile import hotspot_table, profile_call


def _workload():
    total = 0
    for i in range(50000):
        total += i * i
    return total


class TestProfileCall:
    def test_returns_result_and_hotspots(self):
        run = profile_call(_workload, top=5)
        assert run.result == sum(i * i for i in range(50000))
        assert 0 < len(run.hotspots) <= 5
        assert run.total_calls > 0
        # hotspots sorted by cumulative time, descending
        cums = [h.cumulative_seconds for h in run.hotspots]
        assert cums == sorted(cums, reverse=True)

    def test_table_has_header_and_rows(self):
        run = profile_call(_workload, top=3)
        table = hotspot_table(run)
        lines = table.splitlines()
        assert "cumsec" in lines[0] and "function" in lines[0]
        assert any("_workload" in line for line in lines)


class TestProfileCommand:
    def test_policy_spec_smoke(self, capsys):
        code = main(
            ["profile", "sjf:strict=true", "--jobs", "200", "--seed", "3", "--top", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile of 'sjf:strict=true'" in out
        assert "cumsec" in out
        # the simulation engine should show up as a hotspot
        assert "engine.py" in out

    def test_unknown_policy_fails_cleanly(self, capsys):
        code = main(["profile", "no-such-policy", "--jobs", "50"])
        assert code == 2
        assert capsys.readouterr().err.strip()
