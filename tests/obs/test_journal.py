"""Tests for the job journal: appends, durability, tolerant replay."""

from __future__ import annotations

import json

import pytest

from repro.obs.journal import JobJournal, replay


class TestAppend:
    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, clock=lambda: 12.0) as journal:
            journal.append({"event": "queued", "digest": "abc"})
            journal.append({"event": "done", "digest": "abc"}, durable=True)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"event": "queued", "digest": "abc", "ts": 12.0}

    def test_append_stamps_ts_only_when_missing(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", clock=lambda: 5.0)
        record = journal.append({"event": "x", "ts": 1.5})
        journal.close()
        assert record["ts"] == 1.5

    def test_appended_counter_and_size(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        assert journal.size_bytes() == 0
        journal.append({"event": "a"})
        journal.append({"event": "b"})
        assert journal.appended == 2
        assert journal.size_bytes() > 0
        journal.close()

    def test_batch_size_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(tmp_path / "j.jsonl", batch_size=0)

    def test_flushed_lines_visible_before_close(self, tmp_path):
        # A tailing reader must see every event even mid-batch.
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, batch_size=100)
        journal.append({"event": "early"})
        assert "early" in path.read_text()
        journal.close()


class TestReplay:
    def test_missing_file_is_empty(self, tmp_path):
        result = replay(tmp_path / "never-written.jsonl")
        assert result.events == [] and result.malformed == 0

    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path, clock=lambda: 1.0) as journal:
            for i in range(3):
                journal.append({"event": "e", "digest": f"d{i}"})
        result = replay(path)
        assert len(result.events) == 3 and result.malformed == 0
        assert result.bytes_read == path.stat().st_size

    def test_torn_final_line_counted_not_fatal(self, tmp_path):
        # Simulated crash mid-write: the tail line has no newline.
        path = tmp_path / "j.jsonl"
        with JobJournal(path, clock=lambda: 1.0) as journal:
            journal.append({"event": "queued", "digest": "a"})
            journal.append({"event": "done", "digest": "a"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "running", "digest"')
        result = replay(path)
        assert len(result.events) == 2
        assert result.malformed == 1

    def test_corrupt_and_non_dict_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"event": "ok"}\n'
            "not json at all\n"
            "[1, 2, 3]\n"
            "\n"
            '{"event": "also ok"}\n'
        )
        result = replay(path)
        assert [e["event"] for e in result.events] == ["ok", "also ok"]
        assert result.malformed == 2  # blank line is skipped silently

    def test_by_digest_groups_in_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path, clock=lambda: 1.0) as journal:
            journal.append({"event": "queued", "digest": "a"})
            journal.append({"event": "queued", "digest": "b"})
            journal.append({"event": "done", "digest": "a"})
            journal.append({"event": "no-digest"})
        grouped = replay(path).by_digest()
        assert list(grouped) == ["a", "b"]
        assert [e["event"] for e in grouped["a"]] == ["queued", "done"]
