"""Tests for the telemetry registry: counters, gauges, histograms, scoping.

The histogram bucket-edge cases matter most: Prometheus semantics put an
observation exactly on a boundary into that boundary's bucket (``le`` is an
inclusive upper bound), and the cumulative rendering must end in a ``+Inf``
bucket equal to the total count.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Telemetry,
    TelemetryError,
    count,
    current_telemetry,
    gauge_max,
    span,
    telemetry_scope,
)


class TestCounters:
    def test_counts_accumulate(self):
        t = Telemetry()
        t.counter("events").inc()
        t.counter("events").inc(4)
        assert t.counter("events").value() == 5

    def test_labelled_series_are_independent(self):
        t = Telemetry()
        family = t.counter("requests", help_text="req")
        family.inc(method="GET", route="/a")
        family.inc(method="GET", route="/a")
        family.inc(method="POST", route="/a")
        assert family.value(method="GET", route="/a") == 2
        assert family.value(method="POST", route="/a") == 1
        assert family.value(method="PUT", route="/a") == 0

    def test_negative_increment_rejected(self):
        t = Telemetry()
        with pytest.raises(TelemetryError):
            t.counter("events").inc(-1)

    def test_kind_clash_is_an_error(self):
        t = Telemetry()
        t.counter("x")
        with pytest.raises(TelemetryError):
            t.gauge("x")
        with pytest.raises(TelemetryError):
            t.histogram("x")


class TestGauges:
    def test_set_inc_dec(self):
        t = Telemetry()
        g = t.gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value() == 2

    def test_set_max_keeps_high_water(self):
        t = Telemetry()
        g = t.gauge("peak")
        g.set_max(5)
        g.set_max(3)
        assert g.value() == 5
        g.set_max(9)
        assert g.value() == 9


class TestHistogramBucketEdges:
    def test_observation_on_boundary_lands_in_that_bucket(self):
        # le is inclusive: an observation of exactly 0.005 belongs to the
        # 0.005 bucket, not the next one up.  bucket_counts() is cumulative,
        # one entry per edge plus the trailing +Inf total.
        t = Telemetry()
        h = t.histogram("lat", buckets=(0.001, 0.005, 0.01))
        h.observe(0.005)
        assert h.bucket_counts() == [0, 1, 1, 1]

    def test_overflow_goes_to_inf_only(self):
        t = Telemetry()
        h = t.histogram("lat", buckets=(0.1, 1.0))
        h.observe(5.0)
        assert h.bucket_counts() == [0, 0, 1]

    def test_cumulative_counts_are_monotone_and_end_at_total(self):
        t = Telemetry()
        h = t.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.002, 0.002, 0.05, 0.5, 30.0):
            h.observe(value)
        counts = h.bucket_counts()
        assert len(counts) == 5  # four edges + the +Inf total
        assert counts == sorted(counts)
        assert counts[-1] == h.count_() == 6
        assert h.sum_() == pytest.approx(0.0005 + 0.002 + 0.002 + 0.05 + 0.5 + 30.0)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))

    def test_bad_buckets_rejected(self):
        t = Telemetry()
        with pytest.raises(TelemetryError):
            t.histogram("a", buckets=())
        with pytest.raises(TelemetryError):
            t.histogram("b", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError):
            t.histogram("c", buckets=(2.0, 1.0))

    def test_re_registration_requires_same_buckets(self):
        t = Telemetry()
        t.histogram("lat", buckets=(0.1, 1.0))
        t.histogram("lat", buckets=(0.1, 1.0))  # same: fine
        with pytest.raises(TelemetryError):
            t.histogram("lat", buckets=(0.2, 1.0))


class TestScoping:
    def test_module_helpers_are_noops_without_scope(self):
        assert current_telemetry() is None
        count("never_recorded")
        gauge_max("never_recorded_gauge", 7)
        with span("never_timed"):
            pass  # must not raise

    def test_helpers_record_inside_scope(self):
        t = Telemetry()
        with telemetry_scope(t):
            assert current_telemetry() is t
            count("events")
            count("events", 2)
            gauge_max("depth", 4)
            gauge_max("depth", 2)
            with span("work"):
                pass
        assert current_telemetry() is None
        assert t.counter("events").value() == 3
        assert t.gauge("depth").value() == 4
        assert t.histogram("work_seconds").count_() == 1

    def test_scopes_nest_and_restore(self):
        outer, inner = Telemetry(), Telemetry()
        with telemetry_scope(outer):
            with telemetry_scope(inner):
                count("x")
            count("x")
        assert inner.counter("x").value() == 1
        assert outer.counter("x").value() == 1


class TestAsCounters:
    def test_flat_deterministic_dict(self):
        t = Telemetry()
        t.counter("events").inc(3)
        t.gauge("depth").set_max(9)
        assert t.as_counters() == {"events": 3, "depth": 9}
        assert all(isinstance(v, int) for v in t.as_counters().values())

    def test_labelled_only_families_are_skipped(self):
        t = Telemetry()
        t.counter("requests").inc(route="/a")
        t.histogram("lat", buckets=(1.0,)).observe(0.5)
        assert t.as_counters() == {}
