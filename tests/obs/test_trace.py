"""Tests for the span tracer: scoping, nesting, grafting, Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    Tracer,
    chrome_trace,
    chrome_trace_text,
    current_span_id,
    current_tracer,
    trace_scope,
    trace_span,
)


class FakeClock:
    """A deterministic clock: every reading advances by ``step`` seconds."""

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def fake_tracer(step: float = 1.0, wall_epoch: float = 1000.0, **kwargs) -> Tracer:
    return Tracer(clock=FakeClock(step=step), wall=lambda: wall_epoch, **kwargs)


class TestScoping:
    def test_no_scope_is_a_no_op(self):
        assert current_tracer() is None
        assert current_span_id() is None
        with trace_span("anything", key="value"):
            assert current_tracer() is None  # still no scope

    def test_scope_installs_and_restores(self):
        tracer = fake_tracer()
        with trace_scope(tracer):
            assert current_tracer() is tracer
            assert current_span_id() is None  # no open span yet
        assert current_tracer() is None

    def test_scopes_nest_and_restore(self):
        outer, inner = fake_tracer(), fake_tracer()
        with trace_scope(outer):
            with trace_scope(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_trace_span_records_on_active_tracer(self):
        tracer = fake_tracer()
        with trace_scope(tracer):
            with trace_span("phase.one", detail=7):
                pass
        assert [s.name for s in tracer.spans] == ["phase.one"]
        assert tracer.spans[0].attributes == {"detail": 7}


class TestNesting:
    def test_children_follow_the_call_stack(self):
        tracer = fake_tracer()
        with trace_scope(tracer):
            with tracer.span("parent"):
                parent_id = current_span_id()
                with tracer.span("child"):
                    with tracer.span("grandchild"):
                        pass
                with tracer.span("sibling"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["parent"].parent_id is None
        assert by_name["child"].parent_id == parent_id
        assert by_name["grandchild"].parent_id == by_name["child"].span_id
        assert by_name["sibling"].parent_id == parent_id

    def test_failed_block_still_records_its_span(self):
        tracer = fake_tracer()
        with trace_scope(tracer):
            with pytest.raises(RuntimeError):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]

    def test_fake_clock_gives_exact_times(self):
        tracer = fake_tracer(step=1.0)  # constructor consumes reading 0
        with tracer.span("a"):  # start = reading 1 -> 1.0s after epoch
            pass  # end = reading 2
        span = tracer.spans[0]
        assert span.start == 1.0 and span.duration == 1.0


class TestBoundsAndRetroactive:
    def test_max_spans_drops_and_counts(self):
        tracer = fake_tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 2 and tracer.dropped == 3
        trace = chrome_trace(tracer)
        assert trace["otherData"] == {"dropped_spans": 3}

    def test_add_span_rebases_wall_times(self):
        tracer = fake_tracer(wall_epoch=1000.0)
        parent = tracer.add_span("job", 1002.0, 1005.0, state="done")
        tracer.add_span("job.run", 1003.0, 1005.0, parent_id=parent)
        job, run = tracer.spans
        assert job.start == 2.0 and job.duration == 3.0
        assert run.parent_id == parent and run.start == 3.0


class TestGrafting:
    def test_graft_remaps_ids_and_rebases_times(self):
        worker = fake_tracer(wall_epoch=1010.0)
        with worker.span("run.scenario"):
            with worker.span("run.simulate"):
                pass
        serialized = worker.serialize()
        # serialized starts are wall-absolute
        assert all(s["start"] >= 1010.0 for s in serialized)

        parent = fake_tracer(wall_epoch=1000.0)
        with parent.span("bench.fan_out"):
            anchor = current_span_id()
        parent.graft(serialized, parent_id=anchor)

        by_name = {s.name: s for s in parent.spans}
        scenario = by_name["run.scenario"]
        simulate = by_name["run.simulate"]
        # top-level worker span re-parents under the fan-out span
        assert scenario.parent_id == anchor
        assert simulate.parent_id == scenario.span_id
        # 10s wall offset between the epochs survives the rebase
        assert scenario.start == pytest.approx(10.0 + 1.0)
        # ids were remapped: no collision with the parent's own spans
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_two_workers_with_colliding_ids_both_graft(self):
        a, b = fake_tracer(wall_epoch=1000.0), fake_tracer(wall_epoch=1000.0)
        for w, name in ((a, "wa"), (b, "wb")):
            with w.span(name):
                pass
        parent = fake_tracer(wall_epoch=1000.0)
        parent.graft(a.serialize())
        parent.graft(b.serialize())
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids)) == 2


class TestChromeExport:
    def test_export_is_deterministic_text(self):
        def build() -> str:
            tracer = fake_tracer()
            with trace_scope(tracer):
                with tracer.span("bench.run", suite="smoke"):
                    with tracer.span("run.simulate"):
                        pass
            return chrome_trace_text(tracer)

        first, second = build(), build()
        assert first == second  # byte-identical under the fake clock
        assert first.endswith("\n")

    def test_event_shape_and_ordering(self):
        tracer = fake_tracer()
        with tracer.span("b.outer"):
            with tracer.span("a.inner", case="x"):
                pass
        trace = chrome_trace(tracer, process_name="proc")
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        xs = [e for e in events if e["ph"] == "X"]
        # ordered by start time: outer opened first
        assert [e["name"] for e in xs] == ["b.outer", "a.inner"]
        outer, inner = xs
        assert outer["ts"] == 1_000_000.0 and outer["dur"] == 3_000_000.0
        assert inner["args"]["parent_span"] == outer["id"]
        assert inner["cat"] == "a" and outer["cat"] == "b"
        # valid JSON end to end
        json.loads(chrome_trace_text(tracer))
