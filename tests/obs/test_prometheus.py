"""Tests for the Prometheus text exposition renderer.

These assert on the exact line format (version 0.0.4 of the text format):
``# HELP`` / ``# TYPE`` headers, label escaping, cumulative ``_bucket``
series ending in ``+Inf``, and the ``_sum`` / ``_count`` trailers.
"""

from __future__ import annotations

from repro.obs.prometheus import CONTENT_TYPE, render
from repro.obs.telemetry import Telemetry


def lines_of(t: Telemetry):
    return render(t).splitlines()


class TestExposition:
    def test_content_type_pins_format_version(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_empty_registry_renders_empty(self):
        assert render(Telemetry()) == ""

    def test_counter_with_help_and_type(self):
        t = Telemetry()
        t.counter("repro_jobs_total", help_text="Jobs finished.").inc(3)
        assert lines_of(t) == [
            "# HELP repro_jobs_total Jobs finished.",
            "# TYPE repro_jobs_total counter",
            "repro_jobs_total 3",
        ]

    def test_output_ends_with_newline(self):
        t = Telemetry()
        t.counter("x").inc()
        assert render(t).endswith("\n")

    def test_families_sorted_by_name(self):
        t = Telemetry()
        t.counter("zz").inc()
        t.gauge("aa").set(1)
        names = [l.split()[2] for l in lines_of(t) if l.startswith("# TYPE")]
        assert names == ["aa", "zz"]

    def test_labels_rendered_sorted_and_escaped(self):
        t = Telemetry()
        t.counter("req").inc(route='/a"b\\c\nd', method="GET")
        sample = [l for l in lines_of(t) if not l.startswith("#")][0]
        # label names sorted; backslash, quote, and newline escaped
        assert sample == 'req{method="GET",route="/a\\"b\\\\c\\nd"} 1'

    def test_help_text_escapes_newlines(self):
        t = Telemetry()
        t.counter("x", help_text="line one\nline two").inc()
        help_line = lines_of(t)[0]
        assert help_line == "# HELP x line one\\nline two"
        assert "\n" not in help_line

    def test_histogram_buckets_cumulative_with_inf_sum_count(self):
        t = Telemetry()
        h = t.histogram("lat_seconds", buckets=(0.1, 1.0), help_text="Latency.")
        h.observe(0.05)
        h.observe(0.5)
        h.observe(7.0)
        assert lines_of(t) == [
            "# HELP lat_seconds Latency.",
            "# TYPE lat_seconds histogram",
            'lat_seconds_bucket{le="0.1"} 1',
            'lat_seconds_bucket{le="1"} 2',
            'lat_seconds_bucket{le="+Inf"} 3',
            "lat_seconds_sum 7.55",
            "lat_seconds_count 3",
        ]

    def test_histogram_labels_precede_le(self):
        t = Telemetry()
        t.histogram("lat", buckets=(1.0,)).observe(0.5, route="/a")
        bucket_lines = [l for l in lines_of(t) if "_bucket" in l]
        assert bucket_lines[0] == 'lat_bucket{route="/a",le="1"} 1'

    def test_integral_values_render_without_decimal_point(self):
        t = Telemetry()
        t.counter("n").inc(1000000)
        t.gauge("g").set(2.5)
        samples = {
            l.split("{")[0].split(" ")[0]: l.rsplit(" ", 1)[1]
            for l in lines_of(t)
            if not l.startswith("#")
        }
        assert samples["n"] == "1000000"
        assert samples["g"] == "2.5"
