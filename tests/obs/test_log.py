"""Tests for the structured logger: level resolution, line and JSON formats."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import configure, get_logger, resolve_format, resolve_level


class TestResolveLevel:
    def test_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        assert resolve_level("debug") == logging.DEBUG

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "info")
        assert resolve_level(None, default="warning") == logging.INFO

    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level(None, default="warning") == logging.WARNING

    def test_unknown_level_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        with pytest.raises(ValueError):
            resolve_level("loud")
        monkeypatch.setenv("REPRO_LOG", "nope")
        with pytest.raises(ValueError):
            resolve_level(None)


class TestStructuredLines:
    def _capture(self, level=logging.INFO):
        stream = io.StringIO()
        configure(level, stream=stream)
        return stream

    def teardown_method(self):
        # Leave the shared root logger quiet for other tests.
        configure(logging.WARNING)
        logging.getLogger("repro").handlers.clear()

    def test_key_value_pairs_appended(self):
        stream = self._capture()
        get_logger("serve").info("request", method="GET", status=200)
        line = stream.getvalue().strip()
        assert "repro.serve" in line
        assert line.endswith("request method=GET status=200")

    def test_values_with_spaces_are_quoted(self):
        stream = self._capture()
        get_logger("x").info("event", path="a b")
        assert 'path="a b"' in stream.getvalue()

    def test_floats_trimmed(self):
        stream = self._capture()
        get_logger("x").info("event", seconds=0.125)
        assert "seconds=0.125" in stream.getvalue()

    def test_level_filters(self):
        stream = self._capture(level=logging.WARNING)
        get_logger("x").info("quiet")
        get_logger("x").warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output and "loud" in output


class TestResolveFormat:
    def test_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "text")
        assert resolve_format("json") == "json"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        assert resolve_format(None) == "json"

    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_FORMAT", raising=False)
        assert resolve_format(None) == "text"

    def test_unknown_format_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_FORMAT", raising=False)
        with pytest.raises(ValueError):
            resolve_format("yaml")
        monkeypatch.setenv("REPRO_LOG_FORMAT", "xml")
        with pytest.raises(ValueError):
            resolve_format(None)


class TestJsonLines:
    def _capture(self, level=logging.INFO):
        stream = io.StringIO()
        configure(level, stream=stream, fmt="json")
        return stream

    def teardown_method(self):
        configure(logging.WARNING)
        logging.getLogger("repro").handlers.clear()

    def test_each_line_is_a_json_object(self):
        stream = self._capture()
        log = get_logger("serve")
        log.info("request", method="GET", status=200)
        log.info("listening", port=8765)
        lines = stream.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["message"] == "request"
        assert records[0]["method"] == "GET" and records[0]["status"] == 200
        assert records[0]["level"] == "info"
        assert records[0]["logger"] == "repro.serve"
        assert isinstance(records[0]["ts"], float)
        assert records[1]["port"] == 8765

    def test_envelope_keys_win_over_field_collisions(self):
        stream = self._capture()
        get_logger("x").info("event", message="shadow", logger="shadow", ts="shadow")
        record = json.loads(stream.getvalue())
        assert record["message"] == "event"
        assert record["logger"] == "repro.x"
        assert isinstance(record["ts"], float)

    def test_exceptions_serialized(self):
        stream = self._capture()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("x").logger.exception("failed")
        record = json.loads(stream.getvalue())
        assert record["message"] == "failed"
        assert "RuntimeError: boom" in record["exception"]

    def test_unserializable_values_stringified(self):
        stream = self._capture()
        get_logger("x").info("event", path=object())
        record = json.loads(stream.getvalue())
        assert "object object" in record["path"]
