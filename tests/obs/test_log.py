"""Tests for the structured logger: level resolution and line format."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.log import configure, get_logger, resolve_level


class TestResolveLevel:
    def test_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "error")
        assert resolve_level("debug") == logging.DEBUG

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "info")
        assert resolve_level(None, default="warning") == logging.INFO

    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert resolve_level(None, default="warning") == logging.WARNING

    def test_unknown_level_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        with pytest.raises(ValueError):
            resolve_level("loud")
        monkeypatch.setenv("REPRO_LOG", "nope")
        with pytest.raises(ValueError):
            resolve_level(None)


class TestStructuredLines:
    def _capture(self, level=logging.INFO):
        stream = io.StringIO()
        configure(level, stream=stream)
        return stream

    def teardown_method(self):
        # Leave the shared root logger quiet for other tests.
        configure(logging.WARNING)
        logging.getLogger("repro").handlers.clear()

    def test_key_value_pairs_appended(self):
        stream = self._capture()
        get_logger("serve").info("request", method="GET", status=200)
        line = stream.getvalue().strip()
        assert "repro.serve" in line
        assert line.endswith("request method=GET status=200")

    def test_values_with_spaces_are_quoted(self):
        stream = self._capture()
        get_logger("x").info("event", path="a b")
        assert 'path="a b"' in stream.getvalue()

    def test_floats_trimmed(self):
        stream = self._capture()
        get_logger("x").info("event", seconds=0.125)
        assert "seconds=0.125" in stream.getvalue()

    def test_level_filters(self):
        stream = self._capture(level=logging.WARNING)
        get_logger("x").info("quiet")
        get_logger("x").warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output and "loud" in output
