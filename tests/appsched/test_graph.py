"""Tests for program graphs and the micro-benchmark generators."""

from __future__ import annotations

import pytest

from repro.appsched import (
    GraphError,
    ProgramGraph,
    benchmark_suite,
    communication_intensive,
    compute_intensive,
    fork_join,
    master_worker,
    pipeline,
    random_dag,
)


class TestProgramGraph:
    def build_diamond(self):
        graph = ProgramGraph("diamond")
        for name, cost in (("a", 10), ("b", 20), ("c", 30), ("d", 5)):
            graph.add_task(name, cost)
        graph.add_edge("a", "b", 100)
        graph.add_edge("a", "c", 50)
        graph.add_edge("b", "d", 10)
        graph.add_edge("c", "d", 10)
        return graph

    def test_basic_structure(self):
        graph = self.build_diamond()
        assert len(graph) == 4
        assert graph.entry_tasks() == ["a"]
        assert graph.exit_tasks() == ["d"]
        assert set(graph.predecessors("d")) == {"b", "c"}
        assert set(graph.successors("a")) == {"b", "c"}
        assert graph.communication("a", "b") == 100
        assert graph.communication("b", "a") == 0

    def test_totals_and_critical_path(self):
        graph = self.build_diamond()
        assert graph.total_work() == 65
        assert graph.total_communication() == 170
        assert graph.critical_path_seconds() == 10 + 30 + 5
        assert graph.width() == 2

    def test_topological_order_respects_edges(self):
        graph = self.build_diamond()
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")

    def test_cycle_rejected(self):
        graph = ProgramGraph()
        graph.add_task("x", 1)
        graph.add_task("y", 1)
        graph.add_edge("x", "y")
        with pytest.raises(GraphError):
            graph.add_edge("y", "x")
        # The failed edge must not be left behind.
        assert ("y", "x") not in graph.edges

    def test_duplicate_task_rejected(self):
        graph = ProgramGraph()
        graph.add_task("x", 1)
        with pytest.raises(GraphError):
            graph.add_task("x", 2)

    def test_self_edge_and_unknown_task_rejected(self):
        graph = ProgramGraph()
        graph.add_task("x", 1)
        with pytest.raises(GraphError):
            graph.add_edge("x", "x")
        with pytest.raises(GraphError):
            graph.add_edge("x", "missing")

    def test_negative_costs_rejected(self):
        graph = ProgramGraph()
        with pytest.raises(GraphError):
            graph.add_task("x", -1)
        graph.add_task("a", 1)
        graph.add_task("b", 1)
        with pytest.raises(GraphError):
            graph.add_edge("a", "b", megabytes=-5)

    def test_ccr(self):
        graph = self.build_diamond()
        assert graph.communication_to_computation_ratio() == pytest.approx(170 / 65)


class TestGenerators:
    def test_compute_intensive_has_no_edges(self):
        graph = compute_intensive(tasks=10, seed=1)
        assert len(graph) == 10
        assert graph.edges == {}
        assert graph.width() == 10

    def test_communication_intensive_is_heavy_on_edges(self):
        graph = communication_intensive(stages=3, width=4, seed=1)
        assert len(graph) == 12
        assert len(graph.edges) == 2 * 4 * 4
        assert graph.communication_to_computation_ratio() > 0.1

    def test_master_worker_shape(self):
        graph = master_worker(workers=5)
        assert len(graph) == 7
        assert len(graph.successors("master-scatter")) == 5
        assert len(graph.predecessors("master-gather")) == 5

    def test_pipeline_is_a_chain(self):
        graph = pipeline(stages=6)
        assert graph.width() == 1
        assert graph.critical_path_seconds() == pytest.approx(graph.total_work())

    def test_fork_join_levels(self):
        graph = fork_join(phases=2, width=3)
        assert len(graph) == 2 * 3 + 2  # tasks plus one barrier per phase
        assert graph.width() == 3

    def test_random_dag_is_acyclic_and_reproducible(self):
        a = random_dag(tasks=25, seed=5)
        b = random_dag(tasks=25, seed=5)
        assert a.topological_order() == b.topological_order()
        assert a.edges == b.edges

    def test_benchmark_suite_contents(self):
        suite = benchmark_suite(seed=0)
        assert len(suite) == 6
        names = {g.name.split("-")[0] for g in suite}
        assert "compute" in names and "pipeline" in names

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            compute_intensive(tasks=0)
        with pytest.raises(ValueError):
            communication_intensive(stages=1)
        with pytest.raises(ValueError):
            master_worker(workers=0)
        with pytest.raises(ValueError):
            random_dag(tasks=5, edge_probability=2.0)
