"""Tests for metasystems, graph mappers, the execution simulator, and WARMstones."""

from __future__ import annotations

import pytest

from repro.appsched import (
    GraphError,
    HEFTMapper,
    MaxMinMapper,
    MetaSystem,
    MinMinMapper,
    ProgramGraph,
    Resource,
    RoundRobinMapper,
    Warmstones,
    canonical_systems,
    compute_intensive,
    master_worker,
    pipeline,
    simulate_mapping,
)

ALL_MAPPERS = [RoundRobinMapper, MinMinMapper, MaxMinMapper, HEFTMapper]


def two_resource_system(latency=0.1, bandwidth=100.0):
    return MetaSystem(
        name="two",
        resources=[Resource("fast", processors=4, speed=2.0), Resource("slow", processors=4, speed=1.0)],
        default_latency=latency,
        default_bandwidth_mbps=bandwidth,
    )


class TestMetaSystem:
    def test_transfer_costs(self):
        system = two_resource_system(latency=0.5, bandwidth=10.0)
        assert system.transfer_seconds("fast", "fast", 100.0) == 0.0
        assert system.transfer_seconds("fast", "slow", 100.0) == pytest.approx(0.5 + 10.0)

    def test_link_override_is_symmetric(self):
        system = two_resource_system()
        system.set_link("fast", "slow", latency=0.0, bandwidth_mbps=1000.0)
        assert system.transfer_seconds("slow", "fast", 100.0) == pytest.approx(0.1)

    def test_compute_seconds_scales_with_speed(self):
        system = two_resource_system()
        assert system.compute_seconds("fast", 100.0) == 50.0
        assert system.compute_seconds("slow", 100.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MetaSystem("empty", resources=[])
        with pytest.raises(ValueError):
            MetaSystem("dup", resources=[Resource("a", 1), Resource("a", 2)])
        with pytest.raises(ValueError):
            Resource("x", processors=0)
        with pytest.raises(KeyError):
            two_resource_system().set_link("fast", "nope", 0.1, 10.0)

    def test_canonical_systems(self):
        systems = canonical_systems()
        assert len(systems) == 3
        assert {s.name for s in systems} == {
            "cluster",
            "supercomputer+workstations",
            "federated-centers",
        }


class TestMappers:
    @pytest.mark.parametrize("mapper_class", ALL_MAPPERS)
    def test_mapping_covers_every_task(self, mapper_class):
        graph = master_worker(workers=10)
        system = two_resource_system()
        mapping = mapper_class().map(graph, system)
        assert set(mapping) == set(graph.task_names)
        assert set(mapping.values()) <= set(system.resource_names)

    def test_minmin_prefers_the_fast_resource_for_independent_tasks(self):
        graph = compute_intensive(tasks=4, seed=1)
        system = two_resource_system()
        mapping = MinMinMapper().map(graph, system)
        assert all(resource == "fast" for resource in mapping.values())

    def test_heft_places_chain_on_one_fast_resource_when_comm_is_costly(self):
        graph = pipeline(stages=5, megabytes_between=10_000.0)
        system = two_resource_system(latency=1.0, bandwidth=1.0)
        mapping = HEFTMapper().map(graph, system)
        assert len(set(mapping.values())) == 1
        assert set(mapping.values()) == {"fast"}

    def test_round_robin_spreads_tasks(self):
        graph = compute_intensive(tasks=16, seed=2)
        mapping = RoundRobinMapper().map(graph, two_resource_system())
        assert set(mapping.values()) == {"fast", "slow"}


class TestExecutionSimulator:
    def test_independent_tasks_run_in_parallel(self):
        graph = ProgramGraph("par")
        graph.add_task("a", 100)
        graph.add_task("b", 100)
        system = MetaSystem("one", [Resource("r", processors=2, speed=1.0)])
        result = simulate_mapping(graph, system, {"a": "r", "b": "r"})
        assert result.makespan == pytest.approx(100.0)

    def test_processor_contention_serializes_tasks(self):
        graph = ProgramGraph("serial")
        graph.add_task("a", 100)
        graph.add_task("b", 100)
        system = MetaSystem("one", [Resource("r", processors=1, speed=1.0)])
        result = simulate_mapping(graph, system, {"a": "r", "b": "r"})
        assert result.makespan == pytest.approx(200.0)

    def test_dependency_and_communication_delay(self):
        graph = ProgramGraph("chain")
        graph.add_task("a", 100)
        graph.add_task("b", 50)
        graph.add_edge("a", "b", megabytes=100.0)
        system = MetaSystem(
            "two",
            [Resource("x", 1, speed=1.0), Resource("y", 1, speed=1.0)],
            default_latency=1.0,
            default_bandwidth_mbps=10.0,
        )
        result = simulate_mapping(graph, system, {"a": "x", "b": "y"})
        # b starts after a (100) plus latency 1 plus 100/10 transfer = 111.
        assert result.executions["b"].start == pytest.approx(111.0)
        assert result.makespan == pytest.approx(161.0)

    def test_same_resource_communication_is_free(self):
        graph = ProgramGraph("chain")
        graph.add_task("a", 100)
        graph.add_task("b", 50)
        graph.add_edge("a", "b", megabytes=10_000.0)
        system = MetaSystem("one", [Resource("r", 2, speed=1.0)])
        result = simulate_mapping(graph, system, {"a": "r", "b": "r"})
        assert result.makespan == pytest.approx(150.0)

    def test_incomplete_mapping_rejected(self):
        graph = compute_intensive(tasks=3, seed=1)
        system = two_resource_system()
        with pytest.raises(GraphError):
            simulate_mapping(graph, system, {"t0": "fast"})

    def test_unknown_resource_rejected(self):
        graph = compute_intensive(tasks=1, seed=1)
        with pytest.raises(GraphError):
            simulate_mapping(graph, two_resource_system(), {"t0": "nowhere"})

    def test_speedup_and_busy_accounting(self):
        graph = compute_intensive(tasks=8, seed=3)
        system = two_resource_system()
        result = simulate_mapping(graph, system, MinMinMapper().map(graph, system))
        assert result.speedup_over_sequential(graph, system) >= 1.0
        busy = result.resource_busy_seconds()
        assert sum(busy.values()) == pytest.approx(result.total_compute_seconds)

    def test_makespan_never_below_critical_path_on_reference_speed(self):
        graph = master_worker(workers=6)
        system = MetaSystem("uniform", [Resource("r", processors=2, speed=1.0)])
        result = simulate_mapping(graph, system, RoundRobinMapper().map(graph, system))
        assert result.makespan >= graph.critical_path_seconds() - 1e-6


class TestWarmstones:
    def test_scorecard_covers_all_combinations(self):
        environment = Warmstones()
        entries = environment.scorecard()
        expected = len(environment.graphs) * len(environment.systems) * len(environment.mappers)
        assert len(entries) == expected

    def test_best_mapper_for_returns_member_of_roster(self):
        environment = Warmstones()
        graph = environment.graphs[0]
        system = environment.systems[0]
        name, makespan = environment.best_mapper_for(graph, system)
        assert name in {m.name for m in environment.mappers}
        assert makespan > 0

    def test_selection_table_lookup_recommends_known_mapper(self):
        environment = Warmstones()
        environment.build_selection_table()
        recommendation = environment.lookup(master_worker(workers=12), environment.systems[-1])
        assert recommendation in {m.name for m in environment.mappers}

    def test_lookup_builds_table_on_demand(self):
        environment = Warmstones()
        assert environment.lookup(compute_intensive(tasks=8, seed=1), environment.systems[0])
