"""Tests for the higher-level evaluation drivers (comparisons, load sweeps, tables)."""

from __future__ import annotations

import pytest

from repro.evaluation import compare_schedulers, format_table, load_sweep
from repro.schedulers import EasyBackfillScheduler, FCFSScheduler
from tests.conftest import make_job, make_workload


class TestCompareSchedulers:
    def test_one_row_per_scheduler(self, lublin_workload):
        rows = compare_schedulers(
            lublin_workload, [FCFSScheduler(), EasyBackfillScheduler()], machine_size=64
        )
        assert [r.scheduler for r in rows] == ["fcfs", "easy-backfill"]
        assert all(r.label == lublin_workload.name for r in rows)
        assert all(len(r.result.jobs) == len(lublin_workload.summary_jobs()) for r in rows)

    def test_spec_strings_match_instances(self, lublin_workload):
        from_specs = compare_schedulers(lublin_workload, ["fcfs", "easy"], machine_size=64)
        from_instances = compare_schedulers(
            lublin_workload, [FCFSScheduler(), EasyBackfillScheduler()], machine_size=64
        )
        for a, b in zip(from_specs, from_instances):
            assert a.scheduler == b.scheduler
            assert [(j.job_id, j.start_time) for j in a.result.jobs] == [
                (j.job_id, j.start_time) for j in b.result.jobs
            ]

    def test_workers_match_serial(self, lublin_workload):
        serial = compare_schedulers(lublin_workload, ["fcfs", "easy"], machine_size=64)
        parallel = compare_schedulers(
            lublin_workload, ["fcfs", "easy"], machine_size=64, workers=2
        )
        for a, b in zip(serial, parallel):
            assert [(j.job_id, j.start_time, j.end_time) for j in a.result.jobs] == [
                (j.job_id, j.start_time, j.end_time) for j in b.result.jobs
            ]

    def test_mixed_specs_and_instances_preserve_order(self, lublin_workload):
        rows = compare_schedulers(
            lublin_workload,
            ["fcfs", EasyBackfillScheduler(), "conservative"],
            machine_size=64,
            workers=2,
        )
        assert [r.scheduler for r in rows] == [
            "fcfs", "easy-backfill", "conservative-backfill",
        ]

    def test_reports_use_requested_tau(self, lublin_workload):
        rows = compare_schedulers(lublin_workload, [FCFSScheduler()], machine_size=64, tau=60.0)
        assert rows[0].report.tau == 60.0


class TestLoadSweep:
    def test_sweep_hits_requested_loads(self, lublin_workload):
        rows = load_sweep(
            lublin_workload,
            EasyBackfillScheduler,
            loads=[0.5, 0.8],
            machine_size=64,
        )
        assert [r.label for r in rows] == ["load=0.50", "load=0.80"]
        # Higher offered load never decreases the mean wait.
        assert rows[1].report.mean_wait >= rows[0].report.mean_wait * 0.9

    def test_sweep_accepts_policy_specs(self, lublin_workload):
        rows = load_sweep(lublin_workload, "easy", loads=[0.5, 0.8], machine_size=64)
        assert [r.scheduler for r in rows] == ["easy-backfill", "easy-backfill"]
        assert [r.label for r in rows] == ["load=0.50", "load=0.80"]

    def test_sweep_carries_outages_through(self, lublin_workload):
        from repro.core.outage import OutageLog, OutageRecord, OutageType

        outages = OutageLog(
            [
                # Mid-trace, whole-machine failure: whatever is running when
                # it starts is killed (and restarted by the default policy).
                OutageRecord(
                    announced_time=50000,
                    start_time=50000,
                    end_time=60000,
                    outage_type=OutageType.CPU_FAILURE,
                    nodes_affected=64,
                )
            ]
        )
        clean = load_sweep(lublin_workload, "fcfs", loads=[0.7], machine_size=64)
        failed = load_sweep(
            lublin_workload, "fcfs", loads=[0.7], machine_size=64, outages=outages
        )
        assert clean[0].result.outage_kills == 0
        assert failed[0].result.outage_kills > 0

    def test_sweep_carries_honor_dependencies_through(self):
        jobs = [
            make_job(1, submit=0, runtime=1000, processors=4),
            make_job(2, submit=10, runtime=500, processors=4, preceding_job=1, think_time=0),
        ]
        workload = make_workload(jobs)
        open_rows = load_sweep(workload, "fcfs", loads=[1.0], machine_size=32)
        closed_rows = load_sweep(
            workload, "fcfs", loads=[1.0], machine_size=32, honor_dependencies=True
        )
        open_submit = open_rows[0].result.by_job_id()[2].submit_time
        closed_submit = closed_rows[0].result.by_job_id()[2].submit_time
        assert closed_submit > open_submit

    def test_sweep_requires_measurable_base_load(self):
        degenerate = make_workload([make_job(1, submit=0)])
        with pytest.raises(ValueError):
            load_sweep(degenerate, FCFSScheduler, loads=[0.5], machine_size=32)


class TestFormatTable:
    def test_alignment_and_content(self):
        rows = [
            {"name": "fcfs", "wait": 10.5},
            {"name": "easy-backfill", "wait": 3.25},
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "easy-backfill" in table
        assert lines[0].startswith("name")

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_missing_cells_render_blank(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in table
