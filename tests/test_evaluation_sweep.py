"""Tests for the higher-level evaluation drivers (comparisons, load sweeps, tables)."""

from __future__ import annotations

import pytest

from repro.evaluation import compare_schedulers, format_table, load_sweep
from repro.schedulers import EasyBackfillScheduler, FCFSScheduler
from tests.conftest import make_job, make_workload


class TestCompareSchedulers:
    def test_one_row_per_scheduler(self, lublin_workload):
        rows = compare_schedulers(
            lublin_workload, [FCFSScheduler(), EasyBackfillScheduler()], machine_size=64
        )
        assert [r.scheduler for r in rows] == ["fcfs", "easy-backfill"]
        assert all(r.label == lublin_workload.name for r in rows)
        assert all(len(r.result.jobs) == len(lublin_workload.summary_jobs()) for r in rows)

    def test_reports_use_requested_tau(self, lublin_workload):
        rows = compare_schedulers(lublin_workload, [FCFSScheduler()], machine_size=64, tau=60.0)
        assert rows[0].report.tau == 60.0


class TestLoadSweep:
    def test_sweep_hits_requested_loads(self, lublin_workload):
        rows = load_sweep(
            lublin_workload,
            EasyBackfillScheduler,
            loads=[0.5, 0.8],
            machine_size=64,
        )
        assert [r.label for r in rows] == ["load=0.50", "load=0.80"]
        # Higher offered load never decreases the mean wait.
        assert rows[1].report.mean_wait >= rows[0].report.mean_wait * 0.9

    def test_sweep_requires_measurable_base_load(self):
        degenerate = make_workload([make_job(1, submit=0)])
        with pytest.raises(ValueError):
            load_sweep(degenerate, FCFSScheduler, loads=[0.5], machine_size=32)


class TestFormatTable:
    def test_alignment_and_content(self):
        rows = [
            {"name": "fcfs", "wait": 10.5},
            {"name": "easy-backfill", "wait": 3.25},
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "easy-backfill" in table
        assert lines[0].startswith("name")

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_missing_cells_render_blank(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in table
