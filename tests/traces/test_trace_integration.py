"""End-to-end trace tests: run()/run_many determinism and bench store keying."""

from __future__ import annotations

import pytest

from repro.api import Scenario, run, run_many
from repro.bench.runner import run_suite
from repro.bench.store import ResultStore, family_key, result_key
from repro.bench.suite import BenchmarkCase, BenchmarkSuite
from repro.core.swf import parse_swf, write_swf
from repro.data import synthetic_archive


@pytest.fixture(autouse=True)
def isolated_trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "trace-cache"))


class TestRunDeterminism:
    SPEC = "trace:ctc-sp2,jobs=150,seed=6,load=1.2"

    def test_run_is_deterministic_cold_and_warm(self):
        cold = run(Scenario(workload=self.SPEC, policy="easy"))
        warm = run(Scenario(workload=self.SPEC, policy="easy"))
        assert cold.result.jobs == warm.result.jobs
        assert cold.report == warm.report

    def test_parallel_matches_serial_bit_for_bit(self):
        scenarios = [
            Scenario(workload=self.SPEC, policy=policy)
            for policy in ("fcfs", "easy", "conservative")
        ]
        serial = run_many(scenarios)
        parallel = run_many(scenarios, workers=3)
        for s, p in zip(serial, parallel):
            assert s.result.jobs == p.result.jobs
            assert s.report == p.report

    def test_grid_mode_reseeds_trace_per_site(self):
        result = run(
            Scenario(
                workload="trace:ctc-sp2,jobs=40,load=0.7",
                policy="grid:sites=2,meta_jobs=10",
                machine_size=64,
                seed=3,
            )
        )
        assert result.grid is not None
        assert len(result.result.jobs) > 0


class TestStoreKeying:
    def _suite_for(self, workload: str, seeds=(1, 2)) -> BenchmarkSuite:
        scenario = Scenario(workload=workload, jobs=60)
        return BenchmarkSuite(
            name="trace-key-test",
            description="store-keying fixture",
            cases=(
                BenchmarkCase(
                    context=workload, scenario=scenario, seeds=tuple(seeds)
                ),
            ),
        )

    def test_entries_keyed_by_content_digest(self, tmp_path):
        from repro.traces import trace_from_spec

        store = ResultStore(tmp_path / "store")
        outcome = run_suite(self._suite_for("trace:ctc-sp2,jobs=60,load=0.8"), store=store)
        for replication in outcome.replications:
            entry = store.get(replication.key)
            assert entry is not None
            digest = trace_from_spec(
                "trace:ctc-sp2,jobs=60,load=0.8",
                jobs=replication.scenario.jobs,
                seed=replication.scenario.seed,
            ).digest
            assert entry.extra["trace"] == digest

    def test_editing_trace_file_forces_cache_miss(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(synthetic_archive("ctc-sp2", jobs=60, seed=1), path)
        store = ResultStore(tmp_path / "store")
        suite = self._suite_for(str(path))

        first = run_suite(suite, store=store)
        assert first.cache_misses == 2

        again = run_suite(suite, store=store)
        assert again.cache_misses == 0

        workload = parse_swf(path)
        edited = workload.copy()
        edited.jobs[0] = edited.jobs[0].replace(run_time=edited.jobs[0].run_time + 60)
        write_swf(edited, path)

        after_edit = run_suite(suite, store=store)
        assert after_edit.cache_misses == 2  # same path, new content, no reuse

    def test_trace_replications_share_a_family(self):
        base = Scenario(workload="trace:ctc-sp2,jobs=60,load=0.8", jobs=60)
        from repro.bench.runner import _trace_extra

        extra_a = _trace_extra(base.with_(seed=1))
        extra_b = _trace_extra(base.with_(seed=2))
        assert extra_a["trace"] != extra_b["trace"]
        assert extra_a["trace_family"] == extra_b["trace_family"]
        assert result_key(base.with_(seed=1), extra_a) != result_key(
            base.with_(seed=2), extra_b
        )
        assert family_key(base.with_(seed=1), extra_a) == family_key(
            base.with_(seed=2), extra_b
        )

    def test_std_trace_suites_are_registered(self):
        from repro.bench.suite import get_suite, suite_names

        assert {"std-trace-smoke", "std-trace-ctc", "std-trace-archives"} <= set(
            suite_names()
        )
        suite = get_suite("std-trace-smoke")
        assert all(
            case.scenario.workload.startswith("trace:") for case in suite.cases
        )
