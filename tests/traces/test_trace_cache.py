"""Tests for the on-disk trace materialization cache."""

from __future__ import annotations

import pytest

from repro.core.swf import canonical_swf_bytes
from repro.traces import TraceCache, default_cache_root, trace_from_spec

SPEC = "trace:ctc-sp2,jobs=60,seed=4,load=0.9"


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "trace-cache")


class TestCacheRoot:
    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_TRACE_CACHE")
        assert default_cache_root().name == "repro-traces"


class TestMaterialization:
    def test_miss_builds_then_hit_parses(self, cache):
        trace = trace_from_spec(SPEC)
        first = trace.materialize(cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert trace.digest in cache
        second = trace.materialize(cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert first == second
        assert second.name == trace.name

    def test_cached_bytes_are_canonical(self, cache):
        trace = trace_from_spec(SPEC)
        workload = trace.materialize(cache=cache)
        on_disk = cache.path_for(trace.digest).read_bytes()
        assert on_disk == canonical_swf_bytes(workload)

    def test_corrupt_entry_is_rebuilt(self, cache):
        trace = trace_from_spec(SPEC)
        trace.materialize(cache=cache)
        cache.path_for(trace.digest).write_text("; not an swf file\nbogus\n")
        rebuilt = trace.materialize(cache=cache)
        assert rebuilt == trace.build()
        # ... and the overwritten entry is good again.
        assert cache.get(trace.digest) == rebuilt

    def test_use_cache_false_leaves_cache_untouched(self, cache):
        trace = trace_from_spec(SPEC)
        trace.materialize(cache=cache, use_cache=False)
        assert trace.digest not in cache

    def test_distinct_digests_get_distinct_entries(self, cache):
        a = trace_from_spec(SPEC)
        b = trace_from_spec("trace:ctc-sp2,jobs=60,seed=4,load=1.1")
        a.materialize(cache=cache)
        b.materialize(cache=cache)
        assert a.digest in cache and b.digest in cache
        assert cache.path_for(a.digest) != cache.path_for(b.digest)

    def test_meta_sidecar_records_the_spec(self, cache):
        import json

        trace = trace_from_spec(SPEC)
        trace.materialize(cache=cache)
        meta = json.loads(cache.meta_path_for(trace.digest).read_text())
        assert meta["spec"] == trace.spec
        assert meta["digest"] == trace.digest
