"""Tests for the on-disk trace materialization cache."""

from __future__ import annotations

import pytest

from repro.core.swf import canonical_swf_bytes
from repro.traces import TraceCache, default_cache_root, trace_from_spec

SPEC = "trace:ctc-sp2,jobs=60,seed=4,load=0.9"


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "trace-cache")


class TestCacheRoot:
    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_TRACE_CACHE")
        assert default_cache_root().name == "repro-traces"


class TestMaterialization:
    def test_miss_builds_then_hit_parses(self, cache):
        trace = trace_from_spec(SPEC)
        first = trace.materialize(cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert trace.digest in cache
        second = trace.materialize(cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert first == second
        assert second.name == trace.name

    def test_cached_bytes_are_canonical(self, cache):
        trace = trace_from_spec(SPEC)
        workload = trace.materialize(cache=cache)
        on_disk = cache.path_for(trace.digest).read_bytes()
        assert on_disk == canonical_swf_bytes(workload)

    def test_corrupt_entry_is_rebuilt(self, cache):
        trace = trace_from_spec(SPEC)
        trace.materialize(cache=cache)
        cache.path_for(trace.digest).write_text("; not an swf file\nbogus\n")
        rebuilt = trace.materialize(cache=cache)
        assert rebuilt == trace.build()
        # ... and the overwritten entry is good again.
        assert cache.get(trace.digest) == rebuilt

    def test_use_cache_false_leaves_cache_untouched(self, cache):
        trace = trace_from_spec(SPEC)
        trace.materialize(cache=cache, use_cache=False)
        assert trace.digest not in cache

    def test_distinct_digests_get_distinct_entries(self, cache):
        a = trace_from_spec(SPEC)
        b = trace_from_spec("trace:ctc-sp2,jobs=60,seed=4,load=1.1")
        a.materialize(cache=cache)
        b.materialize(cache=cache)
        assert a.digest in cache and b.digest in cache
        assert cache.path_for(a.digest) != cache.path_for(b.digest)

    def test_meta_sidecar_records_the_spec(self, cache):
        import json

        trace = trace_from_spec(SPEC)
        trace.materialize(cache=cache)
        meta = json.loads(cache.meta_path_for(trace.digest).read_text())
        assert meta["spec"] == trace.spec
        assert meta["digest"] == trace.digest


class TestTraceCacheGC:
    def _materialize(self, cache, spec=SPEC):
        trace = trace_from_spec(spec)
        trace.materialize(cache=cache)
        return trace

    def test_fresh_entries_are_kept(self, cache):
        trace = self._materialize(cache)
        stats = cache.gc()
        assert (stats.scanned, stats.kept) == (1, 1)
        assert not stats.removed and trace.digest in cache

    def test_missing_root_is_empty_stats(self, tmp_path):
        stats = TraceCache(tmp_path / "never-created").gc()
        assert stats.scanned == 0 and not stats.removed

    def test_stale_format_is_evicted(self, cache):
        import json

        trace = self._materialize(cache)
        meta_path = cache.meta_path_for(trace.digest)
        meta = json.loads(meta_path.read_text())
        meta["format"] = "trace-v0"
        meta_path.write_text(json.dumps(meta))

        stats = cache.gc()
        assert stats.removed == {trace.digest: "stale"}
        assert trace.digest not in cache
        assert not meta_path.exists()  # the sidecar goes with the SWF

    def test_missing_sidecar_counts_as_corrupt(self, cache):
        trace = self._materialize(cache)
        cache.meta_path_for(trace.digest).unlink()
        stats = cache.gc()
        assert stats.removed == {trace.digest: "corrupt"}
        assert trace.digest not in cache

    def test_age_eviction_uses_swf_mtime(self, cache):
        import os
        import time

        old = self._materialize(cache)
        young = self._materialize(
            cache, "trace:ctc-sp2,jobs=60,seed=5,load=0.9"
        )
        week_ago = time.time() - 7 * 86400
        os.utime(cache.path_for(old.digest), (week_ago, week_ago))

        stats = cache.gc(max_age_days=3)
        assert stats.removed == {old.digest: "expired"}
        assert old.digest not in cache and young.digest in cache

    def test_dry_run_reports_without_deleting(self, cache):
        trace = self._materialize(cache)
        cache.meta_path_for(trace.digest).unlink()
        stats = cache.gc(dry_run=True)
        assert stats.dry_run and stats.removed == {trace.digest: "corrupt"}
        assert trace.digest in cache

    def test_keep_stale_skips_format_and_corrupt_checks(self, cache):
        trace = self._materialize(cache)
        cache.meta_path_for(trace.digest).unlink()
        stats = cache.gc(drop_stale=False)
        assert not stats.removed and trace.digest in cache
