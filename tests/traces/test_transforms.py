"""Tests for the trace transformation pipeline: order, edges, determinism."""

from __future__ import annotations

import pytest

from repro.core.swf.fields import MISSING
from repro.traces import trace_from_spec
from repro.traces.transforms import (
    FieldFilter,
    Head,
    Resample,
    RescaleMachine,
    ScaleRate,
    ScaleToLoad,
    TimeSlice,
    format_duration,
    parse_duration,
)

DAY = 86400


@pytest.fixture(scope="module")
def base_workload():
    return trace_from_spec("trace:ctc-sp2,jobs=400,seed=1").build()


class TestDurations:
    @pytest.mark.parametrize(
        "text,seconds",
        [("90", 90), ("90s", 90), ("5m", 300), ("2h", 7200), ("7d", 7 * DAY), ("1w", 7 * DAY)],
    )
    def test_parse(self, text, seconds):
        assert parse_duration(text) == seconds

    def test_parse_rejects_garbage(self):
        for bad in ("", "d7", "7 days", "-3d"):
            with pytest.raises(ValueError):
                parse_duration(bad)

    @pytest.mark.parametrize("seconds", [90, 300, 7200, 7 * DAY, 3 * DAY + 1])
    def test_format_round_trips(self, seconds):
        assert parse_duration(format_duration(seconds)) == seconds


class TestScaling:
    def test_scale_to_load_hits_the_target(self, base_workload):
        scaled = ScaleToLoad(target=1.2).apply(base_workload)
        machine = scaled.header.max_nodes
        assert scaled.offered_load(machine) == pytest.approx(1.2, rel=1e-3)

    def test_scale_rate_compresses_arrivals(self, base_workload):
        faster = ScaleRate(factor=2.0).apply(base_workload)
        assert faster.span() < base_workload.span()
        assert len(faster) == len(base_workload)

    def test_scaling_empty_workload_raises(self, base_workload):
        empty = TimeSlice(start=0, end=0).apply(base_workload)
        with pytest.raises(ValueError, match="offered load"):
            ScaleToLoad(target=1.0).apply(empty)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_positive_parameters_enforced(self, bad):
        with pytest.raises(ValueError):
            ScaleToLoad(target=bad)
        with pytest.raises(ValueError):
            ScaleRate(factor=bad)


class TestSlice:
    def test_half_open_interval_partitions(self, base_workload):
        first = TimeSlice(start=0, end=7 * DAY).apply(base_workload)
        second = TimeSlice(start=7 * DAY, end=None).apply(base_workload)
        assert len(first) + len(second) == len(base_workload)
        assert len(first) > 0 and len(second) > 0

    def test_boundary_job_belongs_to_the_next_slice(self, workload_factory, job_factory):
        workload = workload_factory(
            [job_factory(1, submit=0), job_factory(2, submit=100), job_factory(3, submit=200)]
        )
        kept = TimeSlice(start=0, end=100).apply(workload)
        assert [j.submit_time for j in kept] == [0]
        tail = TimeSlice(start=100, end=None).apply(workload)
        assert len(tail) == 2

    def test_slice_reorigins_and_renumbers(self, workload_factory, job_factory):
        workload = workload_factory(
            [job_factory(1, submit=50), job_factory(2, submit=150), job_factory(3, submit=250)]
        )
        kept = TimeSlice(start=100, end=300).apply(workload)
        assert [j.submit_time for j in kept] == [0, 100]
        assert [j.job_number for j in kept] == [1, 2]

    def test_empty_slice_is_a_legitimate_result(self, base_workload):
        horizon = base_workload.span() + DAY
        empty = TimeSlice(start=horizon, end=None).apply(base_workload)
        assert len(empty) == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            TimeSlice(start=100, end=50)
        with pytest.raises(ValueError):
            TimeSlice(start=-1, end=None)


class TestFilters:
    def test_size_filter_bounds(self, base_workload):
        kept = FieldFilter(key="min_size", value=16).apply(base_workload)
        assert kept.jobs and all(j.processors >= 16 for j in kept)
        small = FieldFilter(key="max_size", value=8).apply(base_workload)
        assert all(j.processors <= 8 for j in small)

    def test_runtime_and_queue_filters(self, base_workload):
        short = FieldFilter(key="max_runtime", value=3600).apply(base_workload)
        assert all(j.run_time <= 3600 for j in short)
        batch = FieldFilter(key="queue", value=1).apply(base_workload)
        assert all(j.queue_number == 1 for j in batch)

    def test_missing_fields_are_dropped(self, workload_factory, job_factory):
        workload = workload_factory(
            [job_factory(1, runtime=100), job_factory(2).replace(run_time=MISSING)]
        )
        kept = FieldFilter(key="min_runtime", value=1).apply(workload)
        assert len(kept) == 1

    def test_filter_to_empty_is_allowed(self, base_workload):
        none_left = FieldFilter(key="min_size", value=10**6).apply(base_workload)
        assert len(none_left) == 0

    def test_unknown_filter_key_rejected(self):
        with pytest.raises(ValueError, match="unknown filter"):
            FieldFilter(key="min_color", value=1)


class TestResample:
    def test_seed_determinism(self, base_workload):
        a = Resample(jobs=100, seed=4).apply(base_workload)
        b = Resample(jobs=100, seed=4).apply(base_workload)
        c = Resample(jobs=100, seed=5).apply(base_workload)
        assert a == b
        assert a != c
        assert len(a) == 100

    def test_resample_clears_dependencies(self, base_workload):
        sampled = Resample(jobs=50, seed=1).apply(base_workload)
        assert all(j.preceding_job == MISSING for j in sampled)

    def test_resample_empty_trace_raises(self, base_workload):
        empty = Head(jobs=0).apply(base_workload)
        with pytest.raises(ValueError, match="empty"):
            Resample(jobs=10, seed=0).apply(empty)


class TestRescaleMachine:
    def test_sizes_follow_the_machine(self, base_workload):
        smaller = RescaleMachine(nodes=64).apply(base_workload)
        assert smaller.header.max_nodes == 64
        assert smaller.max_processors() <= 64
        assert len(smaller) == len(base_workload)

    def test_sizes_never_drop_below_one(self, workload_factory, job_factory):
        workload = workload_factory([job_factory(1, processors=1)], machine_size=32)
        rescaled = RescaleMachine(nodes=8).apply(workload)
        assert rescaled[0].processors == 1

    def test_unsized_workload_rejected(self, job_factory):
        from repro.core.swf import Workload

        bare = Workload([job_factory(1).replace(allocated_processors=MISSING,
                                                requested_processors=MISSING)])
        with pytest.raises(ValueError, match="no machine size"):
            RescaleMachine(nodes=8).apply(bare)


class TestCompositionOrder:
    def test_load_then_slice_differs_from_slice_then_load(self):
        base = trace_from_spec("trace:ctc-sp2,jobs=400,seed=1")
        a = base.scale_to_load(1.3).slice_window(0, 7 * DAY).build()
        b = base.slice_window(0, 7 * DAY).scale_to_load(1.3).build()
        # Compressing arrivals first pushes more jobs inside the window.
        assert len(a) != len(b)

    def test_pipeline_applies_in_spec_order(self):
        spec = "trace:ctc-sp2,jobs=400,seed=1,load=1.3,slice=0:7d"
        by_spec = trace_from_spec(spec).build()
        by_api = (
            trace_from_spec("trace:ctc-sp2,jobs=400,seed=1")
            .scale_to_load(1.3)
            .slice_window(0, 7 * DAY)
            .build()
        )
        assert by_spec == by_api
