"""Tests for the ``trace:`` spec grammar: parsing, formatting, round trips."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.api.registry import SpecError, UnknownNameError
from repro.traces import (
    ArchiveSource,
    ModelSource,
    split_trace_spec,
    trace_for_scenario,
    trace_from_spec,
)


class TestSplit:
    def test_prefix_is_optional(self):
        assert split_trace_spec("trace:ctc-sp2,load=1.2") == split_trace_spec(
            "ctc-sp2,load=1.2"
        )

    def test_pairs_keep_spec_order(self):
        _, pairs = split_trace_spec("ctc-sp2,load=1.2,slice=0:7d,min_size=4")
        assert [key for key, _ in pairs] == ["load", "slice", "min_size"]

    def test_slice_value_may_contain_colon(self):
        _, pairs = split_trace_spec("ctc-sp2,slice=12h:2d")
        assert pairs == [("slice", "12h:2d")]

    @pytest.mark.parametrize("bad", ["", "   ", "trace:", "trace:,load=1.2"])
    def test_empty_specs_rejected(self, bad):
        with pytest.raises(SpecError):
            split_trace_spec(bad)

    def test_leading_key_value_rejected(self):
        with pytest.raises(SpecError, match="must name a source"):
            split_trace_spec("load=1.2,ctc-sp2")

    def test_bare_key_rejected(self):
        with pytest.raises(SpecError, match="key=value"):
            split_trace_spec("ctc-sp2,load")


class TestSourceResolution:
    def test_archive_catalog_entry(self):
        trace = trace_from_spec("trace:ctc-sp2,jobs=100,seed=3")
        assert isinstance(trace.source, ArchiveSource)
        assert (trace.source.key, trace.source.jobs, trace.source.seed) == (
            "ctc-sp2",
            100,
            3,
        )

    def test_archive_defaults_are_content_stable(self):
        assert trace_from_spec("ctc-sp2").digest == trace_from_spec("ctc-sp2").digest
        assert trace_from_spec("ctc-sp2").source.seed == 0

    def test_model_source_with_model_kwargs(self):
        trace = trace_from_spec("trace:sessions,users=10,jobs=50,seed=2")
        assert isinstance(trace.source, ModelSource)
        assert trace.source.params == (("users", 10),)
        assert len(trace.build()) == 50

    def test_unseeded_model_is_canonicalized(self):
        a = trace_from_spec("trace:lublin99,jobs=40")
        b = trace_from_spec("trace:lublin99,jobs=40")
        assert a.source.seed == 0 and a.digest == b.digest

    def test_unknown_source_gets_did_you_mean(self):
        with pytest.raises(UnknownNameError, match="ctc-sp2"):
            trace_from_spec("trace:ctc-sp")

    def test_catalog_entry_rejects_model_kwargs(self):
        with pytest.raises(SpecError, match="does not accept"):
            trace_from_spec("trace:ctc-sp2,users=10")

    def test_file_source_rejects_generation_params(self, tmp_path):
        with pytest.raises(SpecError, match="content"):
            trace_from_spec(f"trace:{tmp_path}/x.swf,jobs=10")

    def test_sample_seed_requires_sample(self):
        with pytest.raises(SpecError, match="sample_seed without sample"):
            trace_from_spec("trace:ctc-sp2,sample_seed=4")


class TestRoundTrip:
    SPECS = (
        "trace:ctc-sp2,jobs=150,seed=2,load=1.2,slice=0:7d",
        "trace:nasa-ipsc,jobs=80,scale=1.5,min_size=2,head=50",
        "trace:lanl-cm5,jobs=90,sample=60,sample_seed=9",
        "trace:lublin99,jobs=70,seed=1,machine_size=64,nodes=32",
        "trace:sdsc-paragon,jobs=60,max_runtime=7200,queue=1",
    )

    @pytest.mark.parametrize("spec", SPECS)
    def test_format_parse_round_trip(self, spec):
        trace = trace_from_spec(spec)
        again = trace_from_spec(trace.spec)
        assert again == trace
        assert again.digest == trace.digest

    def test_transform_order_is_part_of_the_spec(self):
        a = trace_from_spec("ctc-sp2,load=1.2,slice=0:7d")
        b = trace_from_spec("ctc-sp2,slice=0:7d,load=1.2")
        assert a.spec != b.spec
        assert a.digest != b.digest

    def test_round_trip_through_scenario_json(self):
        scenario = Scenario(
            workload="trace:ctc-sp2,jobs=120,load=1.1,slice=0:3d",
            policy="easy",
            seed=5,
        )
        revived = Scenario.from_json(scenario.to_json())
        assert revived == scenario
        assert (
            trace_for_scenario(revived).digest == trace_for_scenario(scenario).digest
        )


class TestScenarioDefaults:
    def test_scenario_fields_feed_the_source(self):
        scenario = Scenario(workload="trace:ctc-sp2", jobs=77, seed=3)
        trace = trace_for_scenario(scenario)
        assert (trace.source.jobs, trace.source.seed) == (77, 3)

    def test_spec_keys_beat_scenario_fields(self):
        scenario = Scenario(workload="trace:ctc-sp2,jobs=50,seed=9", jobs=77, seed=3)
        trace = trace_for_scenario(scenario)
        assert (trace.source.jobs, trace.source.seed) == (50, 9)

    def test_seed_override_wins_over_scenario_seed(self):
        scenario = Scenario(workload="trace:ctc-sp2", jobs=50, seed=3)
        assert trace_for_scenario(scenario, seed=8).source.seed == 8

    def test_non_trace_specs_resolve_to_none(self):
        assert trace_for_scenario(Scenario(workload="lublin99")) is None
        assert trace_for_scenario(Scenario(workload="ctc-sp2")) is None

    def test_swf_paths_resolve_to_file_traces(self, tmp_path):
        from repro.core.swf import write_swf
        from repro.data import synthetic_archive

        path = tmp_path / "t.swf"
        write_swf(synthetic_archive("ctc-sp2", jobs=30, seed=1), path)
        a = trace_for_scenario(Scenario(workload=str(path)))
        b = trace_for_scenario(Scenario(workload=f"swf:{path}"))
        assert a is not None and b is not None
        assert a.digest == b.digest
