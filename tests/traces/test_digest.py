"""Tests for trace content digests: stability, sensitivity, content addressing."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.core.swf import canonical_swf_bytes, parse_swf, write_swf, write_swf_text
from repro.data import synthetic_archive
from repro.traces import SwfFileSource, Trace, trace_from_spec

SPEC = "trace:ctc-sp2,jobs=120,seed=2,load=1.1,slice=0:7d"


class TestDigestStability:
    def test_stable_within_a_process(self):
        assert trace_from_spec(SPEC).digest == trace_from_spec(SPEC).digest

    def test_stable_across_processes(self):
        # PYTHONHASHSEED varies between interpreter runs; a digest that
        # leaked `hash()` anywhere would differ here.
        script = (
            "from repro.traces import trace_from_spec;"
            f"print(trace_from_spec({SPEC!r}).digest)"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert outputs == {trace_from_spec(SPEC).digest}

    def test_digest_matches_materialized_content(self, tmp_path):
        # Equal digests must mean byte-identical canonical traces.
        a = trace_from_spec(SPEC).build()
        b = trace_from_spec(SPEC).build()
        assert canonical_swf_bytes(a) == canonical_swf_bytes(b)


class TestDigestSensitivity:
    def test_every_ingredient_is_key_material(self):
        base = trace_from_spec(SPEC).digest
        for other in (
            "trace:ctc-sp2,jobs=121,seed=2,load=1.1,slice=0:7d",   # jobs
            "trace:ctc-sp2,jobs=120,seed=3,load=1.1,slice=0:7d",   # seed
            "trace:ctc-sp2,jobs=120,seed=2,load=1.2,slice=0:7d",   # transform param
            "trace:ctc-sp2,jobs=120,seed=2,load=1.1,slice=0:6d",   # other transform
            "trace:ctc-sp2,jobs=120,seed=2,load=1.1",              # pipeline length
            "trace:ctc-sp2,jobs=120,seed=2,slice=0:7d,load=1.1",   # pipeline order
            "trace:nasa-ipsc,jobs=120,seed=2,load=1.1,slice=0:7d",  # source
        ):
            assert trace_from_spec(other).digest != base, other

    def test_family_digest_ignores_only_the_seed(self):
        a = trace_from_spec("trace:ctc-sp2,jobs=120,seed=1")
        b = trace_from_spec("trace:ctc-sp2,jobs=120,seed=2")
        c = trace_from_spec("trace:ctc-sp2,jobs=121,seed=1")
        assert a.digest != b.digest
        assert a.family_digest == b.family_digest
        assert a.family_digest != c.family_digest


class TestFileContentAddressing:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(synthetic_archive("ctc-sp2", jobs=40, seed=1), path)
        return path

    def test_digest_tracks_content_not_path(self, trace_file, tmp_path):
        copy = tmp_path / "renamed.swf"
        copy.write_bytes(trace_file.read_bytes())
        a = Trace(source=SwfFileSource(str(trace_file)))
        b = Trace(source=SwfFileSource(str(copy)))
        assert a.digest == b.digest

    def test_editing_bytes_changes_the_digest(self, trace_file):
        before = Trace(source=SwfFileSource(str(trace_file))).digest
        workload = parse_swf(trace_file)
        edited = workload.copy()
        edited.jobs[0] = edited.jobs[0].replace(run_time=edited.jobs[0].run_time + 1)
        write_swf(edited, trace_file)
        after = Trace(source=SwfFileSource(str(trace_file))).digest
        assert after != before

    def test_alignment_whitespace_is_not_content(self, trace_file, tmp_path):
        aligned = tmp_path / "aligned.swf"
        aligned.write_text(write_swf_text(parse_swf(trace_file), align=True))
        assert (
            Trace(source=SwfFileSource(str(aligned))).digest
            == Trace(source=SwfFileSource(str(trace_file))).digest
        )

    def test_stale_handle_refuses_to_materialize(self, trace_file):
        handle = Trace(source=SwfFileSource(str(trace_file)))
        workload = parse_swf(trace_file)
        edited = workload.copy()
        edited.jobs[0] = edited.jobs[0].replace(run_time=1)
        write_swf(edited, trace_file)
        with pytest.raises(ValueError, match="changed since"):
            handle.build()
