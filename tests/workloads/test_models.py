"""Tests for the rigid workload models (structure, validity, reproducibility)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.swf import validate, summarize
from repro.workloads import (
    Downey97Model,
    Feitelson96Model,
    Jann97Model,
    Lublin99Model,
    UniformModel,
)

ALL_MODELS = [Feitelson96Model, Jann97Model, Lublin99Model, Downey97Model, UniformModel]


@pytest.fixture(scope="module")
def generated():
    """One 600-job workload per model, shared across this module's tests."""
    out = {}
    for model_class in ALL_MODELS:
        model = model_class(machine_size=128)
        out[model_class] = model.generate(600, seed=7)
    return out


class TestStandardConformance:
    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_generated_workload_is_clean(self, generated, model_class):
        report = validate(generated[model_class])
        assert report.is_clean, report.errors[:3]

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_job_count_and_numbering(self, generated, model_class):
        workload = generated[model_class]
        assert len(workload) == 600
        assert [j.job_number for j in workload] == list(range(1, 601))

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_sizes_within_machine(self, generated, model_class):
        workload = generated[model_class]
        assert all(1 <= j.allocated_processors <= 128 for j in workload)

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_runtimes_positive_and_estimates_cover_runtime(self, generated, model_class):
        for job in generated[model_class]:
            assert job.run_time >= 1
            assert job.requested_time >= job.run_time

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_reproducible_with_seed(self, model_class):
        model = model_class(machine_size=64)
        assert model.generate(100, seed=5).jobs == model.generate(100, seed=5).jobs

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_different_seeds_differ(self, model_class):
        model = model_class(machine_size=64)
        assert model.generate(100, seed=1).jobs != model.generate(100, seed=2).jobs

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_invalid_job_count_rejected(self, model_class):
        with pytest.raises(ValueError):
            model_class(machine_size=64).generate(0)


class TestModelStructure:
    def test_feitelson_emphasizes_powers_of_two(self, generated):
        stats = summarize(generated[Feitelson96Model])
        assert stats.power_of_two_fraction > 0.6

    def test_lublin_size_runtime_correlation(self, generated):
        """Bigger jobs run longer on average (the documented correlation)."""
        workload = generated[Lublin99Model]
        sizes = np.array([j.allocated_processors for j in workload], dtype=float)
        runtimes = np.array([j.run_time for j in workload], dtype=float)
        small = runtimes[sizes <= np.median(sizes)].mean()
        large = runtimes[sizes > np.median(sizes)].mean()
        assert large > small

    def test_lublin_has_interactive_and_batch_jobs(self, generated):
        stats = summarize(generated[Lublin99Model])
        assert 0.05 < stats.interactive_fraction < 0.7

    def test_uniform_model_lacks_power_of_two_emphasis(self, generated):
        naive = summarize(generated[UniformModel])
        measured = summarize(generated[Lublin99Model])
        assert naive.power_of_two_fraction < measured.power_of_two_fraction

    def test_jann_sizes_fall_into_declared_classes(self):
        model = Jann97Model(machine_size=64)
        workload = model.generate(300, seed=2)
        boundaries = [(c.low, c.high) for c in model.classes]
        for job in workload:
            assert any(lo <= job.allocated_processors <= hi for lo, hi in boundaries)

    def test_downey_rigid_requests_are_powers_of_two(self, generated):
        for job in generated[Downey97Model]:
            size = job.allocated_processors
            assert size & (size - 1) == 0

    def test_downey_moldable_descriptions_match_workload(self):
        model = Downey97Model(machine_size=64)
        workload, moldable = model.generate_moldable(200, seed=3)
        assert set(moldable) == {j.job_number for j in workload}
        for job in workload:
            description = moldable[job.job_number]
            runtime = description.runtime_on(job.allocated_processors)
            assert runtime == pytest.approx(job.run_time, rel=0.05, abs=2)


class TestLoadControl:
    @pytest.mark.parametrize("model_class", [Lublin99Model, Jann97Model, UniformModel])
    def test_generate_with_load_hits_target(self, model_class):
        model = model_class(machine_size=128)
        workload = model.generate_with_load(500, target_load=0.7, seed=9)
        assert workload.offered_load(128) == pytest.approx(0.7, rel=0.05)

    def test_generate_with_load_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            Lublin99Model().generate_with_load(10, target_load=0.0)

    def test_daily_cycle_concentrates_daytime_arrivals(self):
        workload = Lublin99Model(machine_size=64, peak_to_trough=6.0).generate(2000, seed=11)
        hours = np.array([(j.submit_time / 3600.0) % 24 for j in workload])
        day = np.sum((hours >= 8) & (hours < 20))
        night = len(hours) - day
        assert day > night
