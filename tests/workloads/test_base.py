"""Tests for the shared workload-model infrastructure (arrivals, populations, assembly)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.swf import MISSING, validate
from repro.simulation import make_rng
from repro.workloads.base import (
    DailyCycleArrivals,
    PoissonArrivals,
    UserPopulation,
    assemble_workload,
    round_to_power_of_two,
)


class TestRoundToPowerOfTwo:
    @pytest.mark.parametrize(
        "value,maximum,expected",
        [(1, 128, 1), (3, 128, 4), (5, 128, 4), (6, 128, 8), (100, 128, 128), (1000, 128, 128), (0.5, 128, 1)],
    )
    def test_rounding(self, value, maximum, expected):
        assert round_to_power_of_two(value, maximum) == expected

    def test_result_is_always_a_power_of_two_within_bounds(self):
        rng = make_rng(0)
        for value in rng.uniform(0.1, 500, size=200):
            result = round_to_power_of_two(float(value), 64)
            assert 1 <= result <= 64
            assert result & (result - 1) == 0


class TestArrivalProcesses:
    def test_poisson_mean_interarrival(self):
        arrivals = PoissonArrivals(100.0).generate(make_rng(1), 5000)
        gaps = np.diff(arrivals)
        assert gaps.mean() == pytest.approx(100.0, rel=0.1)
        assert arrivals[0] == 0.0
        assert np.all(np.diff(arrivals) >= 0)

    def test_poisson_invalid_mean(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_daily_cycle_intensity_normalized(self):
        cycle = DailyCycleArrivals(100.0, peak_to_trough=4.0)
        hours = np.arange(0, 24, 0.25)
        intensities = [cycle.intensity(h * 3600) for h in hours]
        assert np.mean(intensities) == pytest.approx(1.0, rel=0.02)
        assert max(intensities) / min(intensities) == pytest.approx(4.0, rel=0.05)

    def test_daily_cycle_peak_hour(self):
        cycle = DailyCycleArrivals(100.0, peak_to_trough=3.0, peak_hour=14.0)
        assert cycle.intensity(14 * 3600) > cycle.intensity(2 * 3600)

    def test_daily_cycle_generates_requested_count(self):
        arrivals = DailyCycleArrivals(200.0).generate(make_rng(2), 500)
        assert len(arrivals) == 500
        assert np.all(np.diff(arrivals) >= 0)

    def test_daily_cycle_invalid_parameters(self):
        with pytest.raises(ValueError):
            DailyCycleArrivals(0.0)
        with pytest.raises(ValueError):
            DailyCycleArrivals(100.0, peak_to_trough=0.5)


class TestUserPopulation:
    def test_assignment_shapes_and_ranges(self):
        population = UserPopulation(users=10, groups=3, executables=20)
        users, groups, executables = population.assign(make_rng(3), 500)
        assert len(users) == len(groups) == len(executables) == 500
        assert users.min() >= 1 and users.max() <= 10
        assert groups.min() >= 1 and groups.max() <= 3
        assert executables.min() >= 1 and executables.max() <= 20

    def test_group_membership_is_stable_per_user(self):
        population = UserPopulation(users=5, groups=3, executables=10)
        users, groups, _ = population.assign(make_rng(4), 400)
        group_of_user = {}
        for user, group in zip(users, groups):
            assert group_of_user.setdefault(user, group) == group

    def test_popularity_is_skewed(self):
        population = UserPopulation(users=20, zipf_exponent=1.2)
        users, _, _ = population.assign(make_rng(5), 2000)
        counts = np.bincount(users, minlength=21)
        assert counts[1] > counts[1:].mean()

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            UserPopulation(users=0)


class TestAssembleWorkload:
    def test_assembly_sorts_and_zeroes_origin(self):
        workload = assemble_workload(
            name="test-model",
            computer="test machine",
            machine_size=64,
            arrivals=[500.0, 100.0, 300.0],
            sizes=[4, 8, 16],
            runtimes=[60.0, 120.0, 180.0],
        )
        assert [j.submit_time for j in workload] == [0, 200, 400]
        assert [j.allocated_processors for j in workload] == [8, 16, 4]
        assert validate(workload).is_clean

    def test_missing_optional_fields_stay_missing(self):
        workload = assemble_workload(
            name="m", computer="c", machine_size=8,
            arrivals=[0.0], sizes=[2], runtimes=[10.0],
        )
        job = workload[0]
        assert job.user_id == MISSING
        assert job.requested_time == MISSING
        assert job.queue_number == 1

    def test_estimates_never_below_runtime(self):
        workload = assemble_workload(
            name="m", computer="c", machine_size=8,
            arrivals=[0.0], sizes=[2], runtimes=[100.0], estimates=[10.0],
        )
        assert workload[0].requested_time == 100

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            assemble_workload(
                name="m", computer="c", machine_size=8,
                arrivals=[0.0, 1.0], sizes=[2], runtimes=[10.0, 20.0],
            )

    def test_header_describes_model(self):
        workload = assemble_workload(
            name="my-model", computer="Test MPP", machine_size=32,
            arrivals=[0.0], sizes=[1], runtimes=[5.0],
        )
        assert workload.header.computer == "Test MPP"
        assert workload.header.max_nodes == 32
        assert any("my-model" in note for note in workload.header.notes)
