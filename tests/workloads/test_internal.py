"""Tests for the internal-job-structure strawman (barriers, granularity, variance)."""

from __future__ import annotations

import pytest

from repro.core.swf import validate
from repro.evaluation import simulate
from repro.metrics import compute_metrics
from repro.schedulers import EasyBackfillScheduler, simulate_gang
from repro.simulation import make_rng
from repro.workloads import (
    InternalStructure,
    InternalStructureModel,
    Lublin99Model,
    apply_structure,
    synchronization_stretch,
)


class TestInternalStructure:
    def test_fine_grained_classification(self):
        fine = InternalStructure(processes=16, barriers=1000, granularity_seconds=0.01, variance=0.5)
        coarse = InternalStructure(processes=16, barriers=10, granularity_seconds=300, variance=0.5)
        serial = InternalStructure(processes=1, barriers=0, granularity_seconds=0.0, variance=0.0)
        assert fine.is_fine_grained
        assert not coarse.is_fine_grained
        assert not serial.is_fine_grained

    def test_validation(self):
        with pytest.raises(ValueError):
            InternalStructure(processes=0, barriers=1, granularity_seconds=1.0, variance=0.1)
        with pytest.raises(ValueError):
            InternalStructure(processes=2, barriers=-1, granularity_seconds=1.0, variance=0.1)
        with pytest.raises(ValueError):
            InternalStructure(processes=2, barriers=1, granularity_seconds=-1.0, variance=0.1)


class TestSynchronizationStretch:
    def test_no_barriers_or_single_process_cost_nothing(self):
        serial = InternalStructure(processes=1, barriers=0, granularity_seconds=0.0, variance=0.0)
        assert synchronization_stretch(serial, coscheduled=False) == 1.0
        no_sync = InternalStructure(processes=32, barriers=0, granularity_seconds=0.0, variance=0.0)
        assert synchronization_stretch(no_sync, coscheduled=False) == 1.0

    def test_uncoordinated_never_cheaper_than_coscheduled(self):
        rng = make_rng(1)
        model = InternalStructureModel()
        for _ in range(100):
            structure = model.sample(int(rng.integers(2, 65)), int(rng.integers(10, 10_000)), rng)
            co = synchronization_stretch(structure, coscheduled=True)
            un = synchronization_stretch(structure, coscheduled=False)
            assert un >= co >= 1.0

    def test_fine_granularity_pays_more_without_coscheduling(self):
        fine = InternalStructure(processes=32, barriers=10_000, granularity_seconds=0.01, variance=0.5)
        coarse = InternalStructure(processes=32, barriers=10, granularity_seconds=600, variance=0.5)
        fine_penalty = synchronization_stretch(fine, False) / synchronization_stretch(fine, True)
        coarse_penalty = synchronization_stretch(coarse, False) / synchronization_stretch(coarse, True)
        assert fine_penalty > coarse_penalty
        assert fine_penalty > 2.0
        assert coarse_penalty == pytest.approx(1.0, rel=0.01)

    def test_skew_grows_with_variance(self):
        low = InternalStructure(processes=16, barriers=100, granularity_seconds=1.0, variance=0.1)
        high = InternalStructure(processes=16, barriers=100, granularity_seconds=1.0, variance=1.0)
        assert synchronization_stretch(high, True) > synchronization_stretch(low, True)


class TestModelAndApplication:
    @pytest.fixture(scope="class")
    def annotated(self):
        workload = Lublin99Model(machine_size=64).generate_with_load(200, 0.6, seed=33)
        structures = InternalStructureModel(fine_grained_fraction=0.5).annotate(workload, seed=33)
        return workload, structures

    def test_every_job_annotated(self, annotated):
        workload, structures = annotated
        assert set(structures) == {j.job_number for j in workload.summary_jobs()}

    def test_serial_jobs_have_no_barriers(self, annotated):
        workload, structures = annotated
        for job in workload.summary_jobs():
            if job.allocated_processors == 1:
                assert structures[job.job_number].barriers == 0

    def test_apply_structure_preserves_validity_and_stretches_runtimes(self, annotated):
        workload, structures = annotated
        coscheduled = apply_structure(workload, structures, coscheduled=True)
        uncoordinated = apply_structure(workload, structures, coscheduled=False)
        assert validate(coscheduled).is_clean
        assert validate(uncoordinated).is_clean
        total_co = sum(j.run_time for j in coscheduled)
        total_un = sum(j.run_time for j in uncoordinated)
        total_base = sum(j.run_time for j in workload)
        assert total_base <= total_co <= total_un

    def test_gang_scheduling_benefit_for_fine_grained_workloads(self, annotated):
        """The Section 2.2 argument: coscheduling pays off when grain is fine."""
        workload, structures = annotated
        coscheduled = apply_structure(workload, structures, coscheduled=True)
        uncoordinated = apply_structure(workload, structures, coscheduled=False)
        # Gang scheduling delivers coscheduling, so it runs the coscheduled
        # variant; uncoordinated time sharing runs the stretched variant.
        gang = compute_metrics(simulate_gang(coscheduled, machine_size=64, max_slots=4))
        uncoordinated_gang = compute_metrics(
            simulate_gang(uncoordinated, machine_size=64, max_slots=4)
        )
        assert gang.mean_response <= uncoordinated_gang.mean_response

    def test_model_parameter_validation(self):
        with pytest.raises(ValueError):
            InternalStructureModel(fine_grained_fraction=1.5)
        with pytest.raises(ValueError):
            InternalStructureModel(max_variance=-0.1)
