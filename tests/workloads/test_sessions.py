"""Tests for the closed user-session workload model."""

from __future__ import annotations

import pytest

from repro.core.swf import validate
from repro.core.swf.feedback import sessions_of
from repro.workloads import Lublin99Model, SessionModel


@pytest.fixture(scope="module")
def session_workload():
    model = SessionModel(
        machine_size=64,
        job_model=Lublin99Model(machine_size=64),
        users=20,
        mean_session_length=4.0,
        mean_think_time=300.0,
    )
    return model.generate(400, seed=21)


class TestSessionModel:
    def test_workload_is_standard_conforming(self, session_workload):
        report = validate(session_workload)
        assert report.is_clean, report.errors[:3]

    def test_dependencies_present(self, session_workload):
        dependent = [j for j in session_workload if j.has_dependency]
        assert len(dependent) > len(session_workload) * 0.3

    def test_dependencies_stay_within_a_user(self, session_workload):
        by_number = {j.job_number: j for j in session_workload}
        for job in session_workload:
            if job.has_dependency:
                assert by_number[job.preceding_job].user_id == job.user_id

    def test_think_times_non_negative(self, session_workload):
        for job in session_workload:
            if job.has_dependency:
                assert job.think_time >= 0

    def test_user_population_respected(self, session_workload):
        assert len(session_workload.users()) <= 20

    def test_sessions_have_expected_mean_length(self, session_workload):
        chains = sessions_of(session_workload)
        mean_length = sum(len(c) for c in chains) / len(chains)
        assert 1.5 < mean_length < 10.0

    def test_submit_times_consistent_with_zero_wait_assumption(self, session_workload):
        """A dependent job is never submitted before its predecessor could finish."""
        by_number = {j.job_number: j for j in session_workload}
        for job in session_workload:
            if job.has_dependency:
                predecessor = by_number[job.preceding_job]
                earliest = predecessor.submit_time + predecessor.run_time
                assert job.submit_time >= earliest - 1  # integer rounding slack

    def test_reproducible(self):
        model = SessionModel(machine_size=32, users=5)
        assert model.generate(50, seed=3).jobs == model.generate(50, seed=3).jobs

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SessionModel(machine_size=32, users=0)
        with pytest.raises(ValueError):
            SessionModel(machine_size=32, mean_session_length=0.5)
        with pytest.raises(ValueError):
            SessionModel(machine_size=32, mean_think_time=-1)
