"""Tests for the speedup models and moldable-job descriptions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.speedup import AmdahlSpeedup, DowneySpeedup, MoldableJob


class TestDowneySpeedup:
    def test_speedup_is_one_on_one_processor(self):
        assert DowneySpeedup(A=16, sigma=0.5).speedup(1) == pytest.approx(1.0)

    def test_speedup_bounded_by_average_parallelism(self):
        model = DowneySpeedup(A=8, sigma=0.5)
        for n in (1, 2, 8, 64, 1024):
            assert model.speedup(n) <= 8.0 + 1e-9

    def test_sigma_zero_is_ideal_up_to_A(self):
        model = DowneySpeedup(A=16, sigma=0.0)
        assert model.speedup(8) == pytest.approx(8.0)
        assert model.speedup(32) == pytest.approx(16.0)

    def test_larger_sigma_means_worse_speedup(self):
        low = DowneySpeedup(A=32, sigma=0.2)
        high = DowneySpeedup(A=32, sigma=2.0)
        assert high.speedup(16) < low.speedup(16)

    def test_serial_job(self):
        assert DowneySpeedup(A=1, sigma=1.0).speedup(64) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DowneySpeedup(A=0.5, sigma=1.0)
        with pytest.raises(ValueError):
            DowneySpeedup(A=2.0, sigma=-1.0)
        with pytest.raises(ValueError):
            DowneySpeedup(A=2.0, sigma=1.0).speedup(0)

    @given(
        A=st.floats(min_value=1.0, max_value=256.0),
        sigma=st.floats(min_value=0.0, max_value=4.0),
        n=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=200, deadline=None)
    def test_speedup_always_within_physical_bounds(self, A, sigma, n):
        s = DowneySpeedup(A=A, sigma=sigma).speedup(n)
        assert 1.0 <= s <= A + 1e-9

    @given(
        A=st.floats(min_value=1.0, max_value=128.0),
        sigma=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_speedup_monotone_in_processors(self, A, sigma):
        model = DowneySpeedup(A=A, sigma=sigma)
        values = [model.speedup(n) for n in (1, 2, 4, 8, 16, 32, 64, 128)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestAmdahl:
    def test_limits(self):
        assert AmdahlSpeedup(0.0).speedup(16) == pytest.approx(16.0)
        assert AmdahlSpeedup(1.0).speedup(16) == pytest.approx(1.0)

    def test_asymptote(self):
        model = AmdahlSpeedup(0.1)
        assert model.speedup(10_000) == pytest.approx(10.0, rel=0.01)

    def test_efficiency_decreases(self):
        model = AmdahlSpeedup(0.05)
        assert model.efficiency(2) > model.efficiency(64)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            AmdahlSpeedup(1.5)


class TestMoldableJob:
    def job(self, A=16.0, sigma=0.5, work=3200.0, maximum=64):
        return MoldableJob(
            job_id=1,
            sequential_work=work,
            speedup_model=DowneySpeedup(A=A, sigma=sigma),
            max_processors=maximum,
        )

    def test_runtime_on_one_processor_is_sequential_work(self):
        assert self.job().runtime_on(1) == pytest.approx(3200.0)

    def test_runtime_decreases_with_processors(self):
        job = self.job()
        assert job.runtime_on(16) < job.runtime_on(4) < job.runtime_on(1)

    def test_out_of_range_allocation_rejected(self):
        job = self.job(maximum=32)
        with pytest.raises(ValueError):
            job.runtime_on(0)
        with pytest.raises(ValueError):
            job.runtime_on(33)

    def test_efficient_processors_threshold(self):
        job = self.job(A=8.0, sigma=1.0, maximum=64)
        generous = job.efficient_processors(0.2)
        strict = job.efficient_processors(0.9)
        assert strict <= generous
        assert 1 <= strict <= 64

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MoldableJob(job_id=1, sequential_work=0.0, speedup_model=AmdahlSpeedup(0.1), max_processors=4)
        with pytest.raises(ValueError):
            MoldableJob(job_id=1, sequential_work=10.0, speedup_model=AmdahlSpeedup(0.1), max_processors=0)
        with pytest.raises(ValueError):
            self.job().efficient_processors(0.0)
