"""End-to-end integration tests exercising the whole pipeline through the public API."""

from __future__ import annotations

import pytest

import repro
from repro.core.swf import annotate_feedback, parse_swf, summarize, validate, write_swf
from repro.evaluation import compare_schedulers, format_table
from repro.metrics import ranking_agreement


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_is_exposed(self):
        assert repro.__version__.count(".") == 2


class TestModelToFileToSimulationPipeline:
    """The workflow the paper standardizes: model -> SWF file -> simulator -> metrics."""

    def test_full_pipeline(self, tmp_path):
        # 1. Generate a model workload and persist it in the standard format.
        model = repro.Lublin99Model(machine_size=64)
        workload = model.generate_with_load(300, 0.75, seed=99)
        path = tmp_path / "lublin.swf"
        write_swf(workload, path)

        # 2. Re-read it: parsing must reproduce the workload and pass validation.
        loaded = parse_swf(path)
        assert loaded.jobs == workload.jobs
        assert validate(loaded).is_clean

        # 3. Evaluate schedulers on the loaded trace.
        rows = compare_schedulers(
            loaded,
            [repro.FCFSScheduler(), repro.EasyBackfillScheduler()],
            machine_size=64,
        )
        reports = [row.report for row in rows]
        by_name = {r.scheduler: r for r in reports}
        assert by_name["easy-backfill"].mean_wait <= by_name["fcfs"].mean_wait

        # 4. The ranking-comparison machinery accepts the reports.
        agreement = ranking_agreement(reports, ["mean_response", "mean_bounded_slowdown"])
        assert all(-1.0 <= tau <= 1.0 for tau in agreement.values())

        # 5. The table formatter renders them.
        table = format_table([r.as_dict() for r in reports])
        assert "easy-backfill" in table

    def test_archive_statistics_and_feedback_annotation(self):
        trace = repro.synthetic_archive("ctc-sp2", jobs=500, seed=3)
        stats = summarize(trace)
        assert stats.jobs == 500
        annotated, feedback_stats = annotate_feedback(trace)
        assert validate(annotated).is_clean
        assert feedback_stats.sessions > 0

    def test_outage_pipeline(self, tmp_path):
        from repro.core.outage import parse_outage_log, write_outage_log

        trace = repro.Lublin99Model(machine_size=64).generate_with_load(200, 0.6, seed=5)
        outages = repro.generate_outages(64, trace.span(), seed=5)
        path = tmp_path / "outages.log"
        write_outage_log(outages, path)
        assert parse_outage_log(path) == outages

        result = repro.simulate(
            trace, repro.EasyBackfillScheduler(outage_aware=True), machine_size=64, outages=outages
        )
        report = repro.compute_metrics(result)
        assert report.jobs + report.killed == len(trace.summary_jobs())

    def test_gang_vs_space_sharing_comparison(self):
        trace = repro.Lublin99Model(machine_size=64).generate_with_load(200, 0.7, seed=6)
        gang = repro.compute_metrics(repro.simulate_gang(trace, machine_size=64, max_slots=4))
        easy = repro.compute_metrics(
            repro.simulate(trace, repro.EasyBackfillScheduler(), machine_size=64)
        )
        assert gang.jobs == easy.jobs
        assert gang.mean_wait <= easy.mean_wait
