"""Small-scale runs of every experiment harness, asserting the expected shapes.

These are integration tests: each experiment is executed at a reduced scale
(seconds, not minutes) and the qualitative outcome the paper leads us to
expect — documented in DESIGN.md and EXPERIMENTS.md — is asserted.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    e01_entities,
    e02_swf_roundtrip,
    e03_metric_ranking,
    e04_objective_weights,
    e05_feedback,
    e06_outages,
    e07_models,
    e08_moldable,
    e09_grid,
    e10_warmstones,
)


class TestE01Entities:
    def test_hierarchy_routes_all_job_classes(self):
        result = e01_entities.run(sites=2, local_jobs_per_site=120, meta_jobs=30, seed=1)
        assert set(result.site_names) == {"site-1", "site-2"}
        assert all(count > 0 for count in result.local_jobs_per_site.values())
        assert result.meta_jobs_total > 0
        assert sum(result.meta_jobs_per_site.values()) >= result.meta_jobs_total
        rows = result.rows()
        assert len(rows) == 3  # two machine schedulers + the meta scheduler
        assert any(row["entity"] == "meta scheduler" for row in rows)


class TestE02RoundTrip:
    def test_every_archive_passes_conformance(self):
        result = e02_swf_roundtrip.run(jobs_per_archive=400, seed=2)
        assert result.all_pass
        assert len(result.rows()) == 4


class TestE03MetricRanking:
    @pytest.fixture(scope="class")
    def result(self):
        return e03_metric_ranking.run(jobs=500, loads=(0.6, 0.9), seed=3)

    def test_backfilling_beats_fcfs_on_slowdown(self, result):
        for load in result.loads:
            reports = {r.scheduler: r for r in result.reports[load]}
            assert (
                reports["easy-backfill"].mean_bounded_slowdown
                <= reports["fcfs"].mean_bounded_slowdown
            )

    def test_backfilling_advantage_grows_with_load(self, result):
        assert result.backfilling_speedup_over_fcfs(0.9) >= result.backfilling_speedup_over_fcfs(0.6) * 0.5
        assert result.backfilling_speedup_over_fcfs(0.9) > 1.0

    def test_rows_cover_all_policies_and_loads(self, result):
        rows = result.rows()
        assert len(rows) == 2 * 3
        assert {row["scheduler"] for row in rows} == {
            "fcfs",
            "easy-backfill",
            "conservative-backfill",
        }


class TestE04ObjectiveWeights:
    def test_weights_change_the_winner(self):
        result = e04_objective_weights.run(jobs=500, load=0.85, seed=4)
        assert result.distinct_winners() >= 2
        assert set(result.winners) == {label for label, _ in e04_objective_weights.DEFAULT_WEIGHTINGS}

    def test_utilization_only_objective_prefers_a_packing_policy(self):
        result = e04_objective_weights.run(jobs=500, load=0.85, seed=4)
        assert result.winners["utilization-only"] != "fcfs"


class TestE05Feedback:
    def test_closed_replay_self_throttles_at_saturation(self):
        result = e05_feedback.run(jobs=500, loads=(0.6, 1.1), seed=5)
        assert result.dependent_fraction > 0.2
        # Ignoring feedback overstates waits: the open replay's mean wait is
        # never below the closed replay's, and the gap is clear past saturation.
        for load in result.loads:
            assert result.divergence_at(load) >= 1.0
        assert result.divergence_at(1.1) > 1.15


class TestE06Outages:
    @pytest.fixture(scope="class")
    def result(self):
        return e06_outages.run(jobs=500, load=0.65, mtbf_days=2.0, seed=6)

    def test_failures_kill_jobs_and_waste_capacity(self, result):
        clean = result.reports["no-outages"]
        failures = result.reports["unannounced-failures"]
        assert result.outage_kills["unannounced-failures"] > 0
        # Restarted executions waste capacity: the same work needs more
        # machine time, so utilization drops and the makespan stretches.
        assert failures.utilization <= clean.utilization
        assert failures.makespan >= clean.makespan

    def test_draining_avoids_most_maintenance_kills(self, result):
        blind = result.outage_kills["maintenance-blind"]
        drained = result.outage_kills["maintenance-drained"]
        assert drained <= blind
        assert drained <= max(1, int(0.2 * blind)) if blind else drained == 0

    def test_rows_cover_all_configurations(self, result):
        assert len(result.rows()) == 4


class TestE07Models:
    def test_measurement_based_models_are_most_representative(self):
        result = e07_models.run(jobs=600, load=0.7, seed=7)
        ordering = result.models_ordered_by_distance()
        # The Talby et al. finding the paper cites: the measurement-based
        # models (Lublin in particular) are the representative ones; the
        # naive guesswork baseline is never the closest match.
        assert ordering[0] != "uniform-naive"
        assert "lublin99" in ordering[:2]

    def test_rows_include_reference_and_models(self):
        result = e07_models.run(jobs=400, load=0.7, seed=7)
        assert len(result.rows()) == 6


class TestE08Moldable:
    def test_adaptive_allocation_helps_at_high_load(self):
        result = e08_moldable.run(jobs=300, loads=(0.5, 0.9), seed=8)
        assert result.adaptive_gain_over_rigid_easy(0.9) >= result.adaptive_gain_over_rigid_easy(0.5) * 0.8
        assert result.adaptive_gain_over_rigid_easy(0.9) > 0.9
        # The adaptive policy shrinks allocations compared to the rigid requests.
        assert result.mean_adaptive_allocation[0.9] > 0


class TestE09Grid:
    @pytest.fixture(scope="class")
    def result(self):
        return e09_grid.run(
            sites=3, local_jobs_per_site=100, meta_jobs=50, local_load=0.55, seed=9
        )

    def test_reservations_complete_coallocations(self, result):
        rows = {row["configuration"]: row for row in result.rows()}
        for policy in ("least-loaded", "earliest-start"):
            with_res = rows[f"{policy}/reservations"]
            without = rows[f"{policy}/no-reservations"]
            assert with_res["meta_unfinished"] <= without["meta_unfinished"]
            assert with_res["coallocations_done"] >= without["coallocations_done"]

    def test_predictors_scored_on_single_site_jobs(self, result):
        predictor_rows = result.predictor_rows()
        assert {row["predictor"] for row in predictor_rows} == {
            "mean-wait",
            "category-mean",
            "profile",
        }
        assert all(row["samples"] > 0 for row in predictor_rows)


class TestE10Warmstones:
    def test_scorecard_and_selection_table(self):
        result = e10_warmstones.run(seed=10)
        assert len(result.entries) == 6 * 3 * 4
        assert len(result.winners) == 6 * 3
        assert result.selection_table
        assert result.lookup_regret < 2.0
        # On the heterogeneous systems a cost-aware mapper wins somewhere.
        heterogeneous_winners = {
            mapper for (graph, system), mapper in result.winners.items() if system != "cluster"
        }
        assert heterogeneous_winners & {"min-min", "max-min", "heft"}


class TestE11Traces:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        from repro.experiments import e11_traces

        patcher = pytest.MonkeyPatch()
        patcher.setenv(
            "REPRO_TRACE_CACHE", str(tmp_path_factory.mktemp("trace-cache"))
        )
        try:
            yield e11_traces.run(traces=("ctc-sp2",), loads=(0.7, 1.0), jobs=250, seed=4)
        finally:
            patcher.undo()

    def test_digests_match_the_spec(self, result):
        from repro.traces import trace_from_spec

        for cell, spec in result.specs.items():
            assert trace_from_spec(spec).digest == result.digests[cell]

    def test_backfilling_beats_fcfs_on_trace_replays(self, result):
        for cell in result.cells:
            assert result.backfill_speedup(*cell) > 1.0

    def test_rows_cover_every_cell_and_policy(self, result):
        rows = result.rows()
        assert len(rows) == len(result.cells) * 2
        assert all(len(row["digest"]) == 12 for row in rows)
