"""Unit and property-based tests for the statistical distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    DiscreteSampler,
    HyperErlang,
    HyperExponential,
    HyperGamma,
    LogUniform,
    TruncatedNormal,
    Weibull,
    Zipf,
    make_rng,
)


class TestLogUniform:
    def test_samples_within_bounds(self):
        dist = LogUniform(10.0, 1000.0)
        rng = make_rng(1)
        samples = dist.sample_many(rng, 2000)
        assert np.all(samples >= 10.0) and np.all(samples <= 1000.0)

    def test_mean_matches_closed_form(self):
        dist = LogUniform(10.0, 1000.0)
        rng = make_rng(2)
        samples = dist.sample_many(rng, 50_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    def test_degenerate_interval(self):
        assert LogUniform(5.0, 5.0).mean() == 5.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LogUniform(0.0, 10.0)
        with pytest.raises(ValueError):
            LogUniform(10.0, 1.0)

    @given(
        low=st.floats(min_value=0.01, max_value=100.0),
        factor=st.floats(min_value=1.0, max_value=1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_single_sample_in_bounds(self, low, factor):
        dist = LogUniform(low, low * factor)
        value = dist.sample(make_rng(0))
        assert low * (1 - 1e-9) <= value <= low * factor * (1 + 1e-9)


class TestHyperExponential:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HyperExponential(probs=(0.5, 0.4), rates=(1.0, 2.0))

    def test_mean_and_cv(self):
        dist = HyperExponential.two_branch(0.9, 1.0, 0.01)
        rng = make_rng(3)
        samples = dist.sample_many(rng, 100_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)
        assert dist.cv2() > 1.0  # hyper-exponential is over-dispersed

    def test_single_branch_is_exponential(self):
        dist = HyperExponential(probs=(1.0,), rates=(0.5,))
        assert dist.mean() == pytest.approx(2.0)
        assert dist.cv2() == pytest.approx(1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            HyperExponential(probs=(1.0,), rates=(-1.0,))


class TestHyperErlang:
    def test_mean_matches_samples(self):
        dist = HyperErlang(probs=(0.7, 0.3), rates=(0.01, 0.001), order=2)
        rng = make_rng(4)
        samples = dist.sample_many(rng, 50_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    def test_order_must_be_positive(self):
        with pytest.raises(ValueError):
            HyperErlang(probs=(1.0,), rates=(1.0,), order=0)

    def test_samples_positive(self):
        dist = HyperErlang(probs=(1.0,), rates=(2.0,), order=3)
        samples = dist.sample_many(make_rng(5), 1000)
        assert np.all(samples > 0)


class TestHyperGamma:
    def test_mean_matches_samples(self):
        dist = HyperGamma(p=0.6, shape1=2.0, scale1=100.0, shape2=1.0, scale2=5000.0)
        samples = dist.sample_many(make_rng(6), 100_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    def test_mixing_probability_bounds(self):
        with pytest.raises(ValueError):
            HyperGamma(p=1.5, shape1=1, scale1=1, shape2=1, scale2=1)

    def test_extreme_mixing_probabilities(self):
        all_first = HyperGamma(p=1.0, shape1=2.0, scale1=10.0, shape2=1.0, scale2=9999.0)
        assert all_first.mean() == pytest.approx(20.0)


class TestZipf:
    def test_support_bounds(self):
        dist = Zipf(n=10, alpha=1.0)
        samples = dist.sample_many(make_rng(7), 5000)
        assert samples.min() >= 1 and samples.max() <= 10

    def test_rank_one_is_most_popular(self):
        dist = Zipf(n=20, alpha=1.2)
        samples = dist.sample_many(make_rng(8), 20_000)
        counts = np.bincount(samples, minlength=21)
        assert counts[1] == counts[1:].max()

    def test_alpha_zero_is_uniform(self):
        dist = Zipf(n=5, alpha=0.0)
        assert dist.mean() == pytest.approx(3.0)


class TestWeibull:
    def test_mean_matches_closed_form(self):
        dist = Weibull(shape=0.7, scale=1000.0)
        samples = dist.sample_many(make_rng(9), 100_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    def test_shape_one_is_exponential_mean(self):
        assert Weibull(shape=1.0, scale=500.0).mean() == pytest.approx(500.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Weibull(shape=0.0, scale=1.0)


class TestTruncatedNormal:
    def test_samples_within_bounds(self):
        dist = TruncatedNormal(mu=0.0, sigma=1.0, low=-1.0, high=1.0)
        samples = dist.sample_many(make_rng(10), 500)
        assert np.all(samples >= -1.0) and np.all(samples <= 1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TruncatedNormal(mu=0.0, sigma=1.0, low=1.0, high=-1.0)


class TestDiscreteSampler:
    def test_respects_weights(self):
        sampler = DiscreteSampler(["a", "b"], [0.99, 0.01])
        rng = make_rng(11)
        samples = sampler.sample_many(rng, 2000)
        assert samples.count("a") > samples.count("b")

    def test_zero_weight_values_never_sampled(self):
        sampler = DiscreteSampler([1, 2, 3], [1.0, 0.0, 1.0])
        samples = sampler.sample_many(make_rng(12), 1000)
        assert 2 not in samples

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSampler([1, 2], [1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSampler([1, 2], [0.0, 0.0])


class TestReproducibility:
    @pytest.mark.parametrize(
        "dist",
        [
            LogUniform(1.0, 100.0),
            HyperExponential.two_branch(0.5, 1.0, 0.1),
            HyperGamma(p=0.5, shape1=1.0, scale1=1.0, shape2=2.0, scale2=2.0),
            Weibull(shape=0.8, scale=10.0),
            Zipf(n=10, alpha=1.0),
        ],
    )
    def test_same_seed_same_samples(self, dist):
        a = [dist.sample(make_rng(99)) for _ in range(5)]
        b = [dist.sample(make_rng(99)) for _ in range(5)]
        assert a == b
