"""Tests for the synthetic archive traces."""

from __future__ import annotations

import pytest

from repro.core.swf import parse_swf_text, summarize, validate, write_swf_text
from repro.data import ARCHIVES, archive_names, synthetic_archive


class TestArchiveGeneration:
    def test_all_archives_listed(self):
        assert set(archive_names()) == {"nasa-ipsc", "ctc-sp2", "sdsc-paragon", "lanl-cm5"}

    @pytest.mark.parametrize("name", ["nasa-ipsc", "ctc-sp2", "sdsc-paragon", "lanl-cm5"])
    def test_archive_is_standard_conforming(self, name):
        workload = synthetic_archive(name, jobs=600, seed=1)
        assert len(workload) == 600
        assert validate(workload).is_clean

    @pytest.mark.parametrize("name", ["nasa-ipsc", "ctc-sp2", "sdsc-paragon", "lanl-cm5"])
    def test_offered_load_matches_spec(self, name):
        workload = synthetic_archive(name, jobs=800, seed=2)
        spec = ARCHIVES[name]
        assert workload.offered_load(spec.machine_size) == pytest.approx(
            spec.offered_load, rel=0.1
        )

    def test_unknown_archive_rejected(self):
        with pytest.raises(KeyError):
            synthetic_archive("cray-t3e")

    def test_invalid_job_count_rejected(self):
        with pytest.raises(ValueError):
            synthetic_archive("ctc-sp2", jobs=0)

    def test_reproducible_with_seed(self):
        a = synthetic_archive("ctc-sp2", jobs=200, seed=5)
        b = synthetic_archive("ctc-sp2", jobs=200, seed=5)
        assert a.jobs == b.jobs


class TestArchiveCharacter:
    def test_nasa_is_power_of_two_and_interactive(self):
        stats = summarize(synthetic_archive("nasa-ipsc", jobs=800, seed=3))
        assert stats.power_of_two_fraction == pytest.approx(1.0)
        assert stats.interactive_fraction > 0.3

    def test_ctc_is_batch_dominated(self):
        stats = summarize(synthetic_archive("ctc-sp2", jobs=800, seed=3))
        assert stats.interactive_fraction < 0.1

    def test_cm5_respects_minimum_allocation(self):
        workload = synthetic_archive("lanl-cm5", jobs=500, seed=4)
        assert all(j.allocated_processors % 32 == 0 for j in workload)
        assert all(j.allocated_processors >= 32 for j in workload)

    def test_archives_carry_memory_data(self):
        workload = synthetic_archive("lanl-cm5", jobs=200, seed=5)
        with_memory = [j for j in workload if j.used_memory > 0]
        assert len(with_memory) == len(workload)

    def test_headers_identify_the_machine(self):
        workload = synthetic_archive("sdsc-paragon", jobs=100, seed=6)
        assert "Paragon" in workload.header.computer
        assert workload.header.max_nodes == 416

    def test_some_jobs_are_killed(self):
        stats = summarize(synthetic_archive("ctc-sp2", jobs=1000, seed=7))
        assert 0.0 < stats.killed_fraction < 0.2

    def test_round_trip_through_swf_text(self):
        workload = synthetic_archive("nasa-ipsc", jobs=300, seed=8)
        assert parse_swf_text(write_swf_text(workload)).jobs == workload.jobs


class TestArchiveDeterminism:
    def test_identical_specs_are_byte_identical(self):
        from repro.core.swf import canonical_swf_bytes

        a = canonical_swf_bytes(synthetic_archive("ctc-sp2", jobs=120, seed=9))
        b = canonical_swf_bytes(synthetic_archive("ctc-sp2", jobs=120, seed=9))
        assert a == b

    def test_default_seed_is_canonicalized(self):
        # seed=None must not draw entropy: the trace catalog content-addresses
        # archives, and the default spec has to be stable too.
        from repro.core.swf import canonical_swf_bytes
        from repro.data import DEFAULT_ARCHIVE_SEED

        assert canonical_swf_bytes(
            synthetic_archive("nasa-ipsc", jobs=60)
        ) == canonical_swf_bytes(
            synthetic_archive("nasa-ipsc", jobs=60, seed=DEFAULT_ARCHIVE_SEED)
        )

    def test_header_timestamps_are_fixed_not_wall_clock(self):
        from repro.data import ARCHIVE_EPOCH

        workload = synthetic_archive("sdsc-paragon", jobs=60, seed=1)
        header = workload.header
        assert header.get_int("UnixStartTime") == ARCHIVE_EPOCH
        assert header.get("StartTime") == "Fri Jan 01 00:00:00 UTC 1999"
        assert header.get("TimeZoneString") == "UTC"
        # EndTime is derived from the trace span, so it is deterministic too.
        assert header.get("EndTime") == synthetic_archive(
            "sdsc-paragon", jobs=60, seed=1
        ).header.get("EndTime")
