"""Unit tests for the availability timeline derived from an outage log."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.outage import AvailabilityTimeline, OutageLog, OutageRecord, OutageType


def record(start, end, nodes):
    return OutageRecord(
        announced_time=start,
        start_time=start,
        end_time=end,
        outage_type=OutageType.CPU_FAILURE,
        nodes_affected=nodes,
    )


class TestCapacity:
    def test_full_capacity_without_outages(self):
        timeline = AvailabilityTimeline(64)
        assert timeline.capacity_at(0) == 64
        assert timeline.capacity_at(10**9) == 64
        assert timeline.next_change_after(0) is None

    def test_capacity_drops_during_outage(self):
        timeline = AvailabilityTimeline(64, OutageLog([record(100, 200, 16)]))
        assert timeline.capacity_at(50) == 64
        assert timeline.capacity_at(100) == 48
        assert timeline.capacity_at(199) == 48
        assert timeline.capacity_at(200) == 64

    def test_overlapping_outages_stack(self):
        log = OutageLog([record(100, 300, 16), record(200, 400, 16)])
        timeline = AvailabilityTimeline(64, log)
        assert timeline.capacity_at(250) == 32
        assert timeline.capacity_at(350) == 48

    def test_capacity_never_negative(self):
        log = OutageLog([record(0, 100, 60), record(0, 100, 60)])
        timeline = AvailabilityTimeline(64, log)
        assert timeline.capacity_at(50) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityTimeline(64).capacity_at(-1)

    def test_invalid_machine_size_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityTimeline(0)


class TestQueries:
    def test_next_change_after(self):
        timeline = AvailabilityTimeline(64, OutageLog([record(100, 200, 8)]))
        assert timeline.next_change_after(0) == 100
        assert timeline.next_change_after(100) == 200
        assert timeline.next_change_after(200) is None

    def test_minimum_capacity_over_window(self):
        timeline = AvailabilityTimeline(64, OutageLog([record(100, 200, 16)]))
        assert timeline.minimum_capacity(0, 50) == 64
        assert timeline.minimum_capacity(0, 150) == 48
        assert timeline.minimum_capacity(150, 300) == 48

    def test_available_node_seconds(self):
        timeline = AvailabilityTimeline(10, OutageLog([record(100, 200, 4)]))
        # 100 s at 10 nodes + 100 s at 6 nodes + 100 s at 10 nodes
        assert timeline.available_node_seconds(0, 300) == 1000 + 600 + 1000

    def test_available_node_seconds_empty_window(self):
        assert AvailabilityTimeline(10).available_node_seconds(100, 100) == 0

    def test_breakpoints_listing(self):
        timeline = AvailabilityTimeline(8, OutageLog([record(10, 20, 2)]))
        assert timeline.breakpoints() == [(0, 8), (10, 6), (20, 8)]

    @given(
        nodes=st.integers(min_value=1, max_value=32),
        start=st.integers(min_value=0, max_value=1000),
        duration=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_downtime_conservation(self, nodes, start, duration):
        """Node-seconds lost equal the integral deficit of the timeline."""
        machine = 32
        log = OutageLog([record(start, start + duration, nodes)])
        timeline = AvailabilityTimeline(machine, log)
        horizon = start + duration + 10
        available = timeline.available_node_seconds(0, horizon)
        assert available == machine * horizon - min(nodes, machine) * duration
