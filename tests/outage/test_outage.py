"""Unit tests for the outage-record standard, log I/O, and generator."""

from __future__ import annotations

import pytest

from repro.core.outage import (
    OutageLog,
    OutageModel,
    OutageRecord,
    OutageType,
    generate_outages,
    parse_outage_log,
    parse_outage_log_text,
    write_outage_log,
    write_outage_log_text,
)


def record(start=100, end=200, announced=None, nodes=2, outage_type=OutageType.CPU_FAILURE, components=()):
    return OutageRecord(
        announced_time=start if announced is None else announced,
        start_time=start,
        end_time=end,
        outage_type=outage_type,
        nodes_affected=nodes,
        components=tuple(components),
    )


class TestOutageRecord:
    def test_basic_fields_and_duration(self):
        r = record(start=100, end=400, announced=50)
        assert r.duration == 300
        assert r.advance_notice == 50
        assert r.is_announced

    def test_unannounced_failure_has_no_notice(self):
        r = record(start=100, end=200)
        assert r.advance_notice == 0
        assert not r.is_announced

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            record(start=200, end=100)

    def test_announced_after_start_rejected(self):
        with pytest.raises(ValueError):
            record(start=100, end=200, announced=150)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            record(nodes=0)

    def test_component_count_must_match(self):
        with pytest.raises(ValueError):
            record(nodes=2, components=(1, 2, 3))

    def test_overlap_predicate(self):
        r = record(start=100, end=200)
        assert r.overlaps(150, 300)
        assert r.overlaps(0, 101)
        assert not r.overlaps(200, 300)  # half-open interval
        assert not r.overlaps(0, 100)

    def test_scheduled_types(self):
        assert OutageType.MAINTENANCE.is_scheduled
        assert OutageType.DEDICATED_TIME.is_scheduled
        assert not OutageType.CPU_FAILURE.is_scheduled


class TestOutageLog:
    def test_sorted_by_start_time(self):
        log = OutageLog([record(start=500, end=600), record(start=100, end=200)])
        assert [r.start_time for r in log] == [100, 500]

    def test_add_keeps_order(self):
        log = OutageLog([record(start=500, end=600)])
        log.add(record(start=100, end=200))
        assert log[0].start_time == 100

    def test_active_and_known_queries(self):
        log = OutageLog([record(start=100, end=200, announced=50)])
        assert len(log.active_at(150)) == 1
        assert log.active_at(250) == []
        assert len(log.known_by(60)) == 1
        assert log.known_by(10) == []

    def test_in_window(self):
        log = OutageLog([record(start=100, end=200), record(start=1000, end=1100)])
        assert len(log.in_window(0, 500)) == 1

    def test_total_node_downtime(self):
        log = OutageLog([record(start=0, end=100, nodes=2), record(start=0, end=50, nodes=4)])
        assert log.total_node_downtime() == 2 * 100 + 4 * 50

    def test_scheduled_unscheduled_split(self):
        log = OutageLog(
            [record(outage_type=OutageType.MAINTENANCE), record(outage_type=OutageType.CPU_FAILURE)]
        )
        assert len(log.scheduled()) == 1
        assert len(log.unscheduled()) == 1


class TestOutageLogIO:
    def test_round_trip_text(self):
        log = OutageLog(
            [
                record(start=100, end=200, announced=50, nodes=2, components=(3, 7)),
                record(start=500, end=900, outage_type=OutageType.MAINTENANCE, nodes=4),
            ]
        )
        text = write_outage_log_text(log)
        parsed = parse_outage_log_text(text)
        assert parsed == log

    def test_round_trip_file(self, tmp_path):
        log = OutageLog([record()])
        path = tmp_path / "outages.txt"
        write_outage_log(log, path)
        assert parse_outage_log(path) == log

    def test_comment_lines_ignored(self):
        assert len(parse_outage_log_text("; just a comment\n")) == 0

    def test_unknown_type_code_rejected(self):
        with pytest.raises(ValueError):
            parse_outage_log_text("1 0 0 10 99 1 -1\n")

    def test_short_record_rejected(self):
        with pytest.raises(ValueError):
            parse_outage_log_text("1 0 0 10\n")


class TestGenerator:
    def test_reproducible_with_seed(self):
        a = generate_outages(128, 30 * 24 * 3600, seed=1)
        b = generate_outages(128, 30 * 24 * 3600, seed=1)
        assert a == b

    def test_failures_and_maintenance_present(self):
        log = generate_outages(128, 90 * 24 * 3600, seed=2)
        assert len(log.unscheduled()) > 0
        assert len(log.scheduled()) > 0

    def test_maintenance_is_announced_in_advance(self):
        log = generate_outages(64, 60 * 24 * 3600, seed=3)
        for r in log.scheduled():
            assert r.advance_notice > 0

    def test_failures_respect_node_limit(self):
        model = OutageModel(max_nodes_per_failure=2, maintenance_interval_seconds=0)
        log = generate_outages(32, 120 * 24 * 3600, model=model, seed=4)
        assert all(r.nodes_affected <= 2 for r in log)

    def test_all_outages_within_horizon(self):
        horizon = 30 * 24 * 3600
        log = generate_outages(64, horizon, seed=5)
        assert all(r.start_time < horizon for r in log)

    def test_zero_horizon_gives_empty_log(self):
        assert len(generate_outages(64, 0, seed=6)) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_outages(0, 1000)
        with pytest.raises(ValueError):
            OutageModel(mtbf_seconds=-1)
        with pytest.raises(ValueError):
            OutageModel(maintenance_fraction=0.0)
