"""End-to-end distributed execution: workers, crash-resume, bit-identity.

The crash tests run real worker subprocesses against a shared queue/store
directory and SIGKILL them mid-simulation — the exact failure the lease
TTL + store-rescan design exists to survive.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api import Scenario
from repro.bench.runner import run_suite
from repro.bench.store import ResultStore, StoredResult
from repro.bench.suite import BenchmarkCase, BenchmarkSuite
from repro.dist import (
    QueueIncompleteError,
    WorkQueue,
    gather,
    run_worker,
)


SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    return env


def small_suite(name: str = "dist-small", seeds=(1, 2, 3)) -> BenchmarkSuite:
    scenario = Scenario(workload="uniform", jobs=60, machine_size=32, load=0.7)
    return BenchmarkSuite(
        name=name, description="",
        cases=(
            BenchmarkCase(context="u", scenario=scenario.with_(policy="fcfs"),
                          seeds=tuple(seeds)),
            BenchmarkCase(context="u", scenario=scenario.with_(policy="easy"),
                          seeds=tuple(seeds)),
        ),
        metrics=("mean_wait",),
    )


def store_keys(root: Path):
    return sorted(path.stem for path in Path(root).glob("*/*.json"))


class TestWorkerEndToEnd:
    def test_single_worker_drains_the_queue(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        enq = queue.enqueue_suite(suite, store=store)
        stats = run_worker(queue, store, worker_id="w0")
        assert stats.simulated == enq.units
        assert stats.claimed == enq.units
        assert stats.events_processed > 0
        assert queue.pending_keys(store) == []
        # The ledger was published for status tooling.
        record = queue.worker_stats()["w0"]
        assert record["simulated"] == enq.units
        assert record["events_processed"] == stats.events_processed
        assert record["counters"]["dist.claim"] == enq.units

    def test_distributed_store_is_bit_identical_to_serial(self, tmp_path):
        suite = small_suite()
        dist_store = ResultStore(tmp_path / "dist-store")
        serial_store = ResultStore(tmp_path / "serial-store")
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite, store=dist_store)
        run_worker(queue, dist_store, worker_id="w0")
        run_suite(suite, store=serial_store)

        assert store_keys(dist_store.root) == store_keys(serial_store.root)
        for key in store_keys(serial_store.root):
            ours, theirs = dist_store.get(key), serial_store.get(key)
            assert ours.scenario == theirs.scenario
            assert ours.extra == theirs.extra
            assert ours.suite == theirs.suite and ours.case == theirs.case
            assert ours.report.as_dict() == theirs.report.as_dict()

    def test_worker_skips_already_stored_units(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        run_suite(suite, store=store)
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite, store=store)
        stats = run_worker(queue, store, worker_id="w0")
        assert stats.simulated == 0

    def test_max_units_bounds_one_worker(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        enq = queue.enqueue_suite(suite, store=store)
        stats = run_worker(queue, store, max_units=2, worker_id="w0")
        assert stats.simulated == 2
        rest = run_worker(queue, store, worker_id="w1")
        assert rest.simulated == enq.units - 2

    def test_corrupt_unit_is_skipped_not_fatal(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        enq = queue.enqueue_suite(suite, store=store)
        victim = queue.unit_keys()[0]
        (queue.units_dir / f"{victim}.json").write_text("{torn")
        stats = run_worker(queue, store, worker_id="w0")
        assert stats.corrupt_units == 1
        assert stats.simulated == enq.units - 1
        assert queue.pending_keys(store) == [victim]


class TestGather:
    def test_gather_refuses_an_incomplete_suite(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite, store=store)
        with pytest.raises(QueueIncompleteError) as excinfo:
            gather(queue, suite, store)
        assert excinfo.value.total == 6
        assert len(excinfo.value.missing) == 6

    def test_gather_requires_a_manifest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        with pytest.raises(FileNotFoundError):
            gather(queue, small_suite(), store)

    def test_gather_matches_the_serial_result(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite, store=store)
        run_worker(queue, store, worker_id="w0")
        gathered = gather(queue, suite, store)
        assert gathered.cache_hits == 6 and gathered.cache_misses == 0

        serial = run_suite(suite, store=ResultStore(tmp_path / "serial"))
        assert gathered.rows() == serial.rows()

    def test_allow_partial_drains_locally(self, tmp_path):
        suite = small_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite, store=store)
        result = gather(queue, suite, store, allow_partial=True)
        assert result.cache_misses == 6
        assert queue.pending_keys(store) == []


#: Child that hammers one store key with a marker value; the parent reads
#: concurrently to prove puts are atomic (no torn entry is ever visible).
RACE_WRITER = """
import sys, time
from repro.api import Scenario, run
from repro.bench.store import ResultStore, StoredResult

store = ResultStore(sys.argv[1])
marker = float(sys.argv[2])
scenario = Scenario(workload="uniform", jobs=20, machine_size=16, load=0.5, seed=3)
report = run(scenario).report
deadline = time.monotonic() + float(sys.argv[3])
while time.monotonic() < deadline:
    store.put(StoredResult(key="f" * 64, scenario=scenario, report=report,
                           extra={}, elapsed_seconds=marker))
"""

#: Child worker process: drain a queue into a store (the crash victim).
WORKER_CHILD = """
import sys
from repro.bench.store import ResultStore
from repro.dist import WorkQueue, run_worker

queue = WorkQueue(sys.argv[1])
store = ResultStore(sys.argv[2])
stats = run_worker(queue, store, ttl=float(sys.argv[3]), worker_id=sys.argv[4])
print(stats.simulated)
"""


class TestCrossProcess:
    def test_concurrent_puts_same_key_never_tear(self, tmp_path):
        store_root = tmp_path / "store"
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", RACE_WRITER, str(store_root),
                 str(float(marker)), "1.5"],
                env=child_env(),
            )
            for marker in (1, 2)
        ]
        store = ResultStore(store_root)
        key = "f" * 64
        observed = set()
        decoded = 0
        deadline = time.monotonic() + 10
        while any(w.poll() is None for w in writers):
            assert time.monotonic() < deadline, "race writers never finished"
            entry = store.get(key)
            if entry is not None:
                # Every read sees one complete entry — last writer wins,
                # never an interleaving of the two.
                assert entry.elapsed_seconds in (1.0, 2.0)
                observed.add(entry.elapsed_seconds)
                decoded += 1
        for writer in writers:
            assert writer.wait() == 0
        assert decoded > 0
        final = store.get(key)
        assert final is not None and final.elapsed_seconds in (1.0, 2.0)

    def test_two_worker_processes_split_one_suite(self, tmp_path):
        suite = small_suite("dist-pair", seeds=(1, 2, 3, 4))
        store_root = tmp_path / "store"
        queue_root = tmp_path / "queue"
        store = ResultStore(store_root)
        queue = WorkQueue(queue_root)
        enq = queue.enqueue_suite(suite, store=store)

        workers = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER_CHILD, str(queue_root),
                 str(store_root), "60", f"proc{i}"],
                env=child_env(), stdout=subprocess.PIPE, text=True,
            )
            for i in range(2)
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0
        assert queue.pending_keys(store) == []

        # No unit was simulated twice: the fleet's per-worker ledgers sum to
        # exactly the simulator events recorded across the store.
        stats = queue.worker_stats()
        fleet_simulated = sum(s["simulated"] for s in stats.values())
        fleet_events = sum(s["events_processed"] for s in stats.values())
        store_events = sum(
            int(store.get(key).report.counters.get("events_processed", 0))
            for key in store_keys(store_root)
        )
        assert fleet_simulated == enq.units
        assert fleet_events == store_events

    def test_sigkilled_worker_resumes_with_zero_resimulation(self, tmp_path):
        # Enough units that the victim is mid-suite when it dies.
        suite = small_suite("dist-crash", seeds=(1, 2, 3, 4, 5, 6))
        store_root = tmp_path / "store"
        queue_root = tmp_path / "queue"
        store = ResultStore(store_root)
        queue = WorkQueue(queue_root)
        enq = queue.enqueue_suite(suite, store=store)

        ttl = 0.5
        victim = subprocess.Popen(
            [sys.executable, "-c", WORKER_CHILD, str(queue_root),
             str(store_root), str(ttl), "victim"],
            env=child_env(), stdout=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60
        while not store_keys(store_root):
            assert time.monotonic() < deadline, "victim never stored a unit"
            assert victim.poll() is None, "victim exited before the kill"
            time.sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()

        stored_at_death = store_keys(store_root)
        missing = len(queue.pending_keys(store))
        assert 0 < len(stored_at_death) <= enq.units

        # Let any lease the victim died holding expire, then resume.
        time.sleep(ttl + 0.2)
        stats = run_worker(queue, store, ttl=ttl, worker_id="survivor")
        assert queue.pending_keys(store) == []
        assert len(store_keys(store_root)) == enq.units
        # Zero re-simulation: the survivor ran exactly the missing units,
        # and every key the victim stored is untouched.
        assert stats.simulated == missing
        assert set(stored_at_death) <= set(store_keys(store_root))

        events = [
            json.loads(line)
            for line in queue.journal_path.read_text().splitlines()
        ]
        done = [e for e in events if e.get("event") == "dist.unit_done"]
        # Each key finished at most once fleet-wide (the kill may land
        # between a store write and its journal line, so one done event —
        # never a duplicate — can be missing).
        assert len({e["key"] for e in done}) == len(done)
        assert enq.units - 1 <= len(done) <= enq.units
