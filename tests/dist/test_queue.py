"""Tests for the file-backed work queue: enqueue, manifests, progress."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario
from repro.bench.runner import _expand, run_suite
from repro.bench.store import ResultStore
from repro.bench.suite import BenchmarkCase, BenchmarkSuite
from repro.dist import WorkQueue, WorkUnit


def twin_suite(name: str = "twins") -> BenchmarkSuite:
    """Two cases sharing identical scenarios: 6 replications, 3 distinct keys."""
    scenario = Scenario(workload="uniform", jobs=40, machine_size=32,
                        load=0.7, policy="fcfs")
    return BenchmarkSuite(
        name=name, description="",
        cases=(
            BenchmarkCase(context="a", scenario=scenario, seeds=(1, 2, 3)),
            BenchmarkCase(context="b", scenario=scenario, seeds=(1, 2, 3)),
        ),
        metrics=("mean_wait",),
    )


class TestEnqueue:
    def test_units_match_the_serial_expansion(self, tmp_path):
        suite = twin_suite()
        queue = WorkQueue(tmp_path / "queue")
        result = queue.enqueue_suite(suite)
        expanded_keys = {entry[4] for entry in _expand(suite)}
        assert result.replications == 6
        assert result.units == 3
        assert result.enqueued == 3
        assert set(queue.unit_keys()) == expanded_keys

    def test_enqueue_is_idempotent(self, tmp_path):
        suite = twin_suite()
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite)
        again = queue.enqueue_suite(suite)
        assert again.enqueued == 0
        assert again.already_queued == 3

    def test_already_stored_units_are_reported(self, tmp_path):
        suite = twin_suite()
        store = ResultStore(tmp_path / "store")
        run_suite(suite, store=store)
        queue = WorkQueue(tmp_path / "queue")
        result = queue.enqueue_suite(suite, store=store)
        assert result.already_stored == 3
        # They still land in the manifest: gather needs every key.
        assert len(queue.manifest(suite.name)["keys"]) == 3
        assert queue.pending_keys(store) == []

    def test_manifest_round_trip(self, tmp_path):
        suite = twin_suite()
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite)
        manifest = queue.manifest(suite.name)
        assert manifest["suite"] == suite.name
        assert manifest["replications"] == 6
        assert manifest["keys"] == sorted(queue.unit_keys())
        assert queue.suite_names() == [suite.name]
        assert queue.manifest("no-such-suite") is None

    def test_unit_round_trip(self, tmp_path):
        suite = twin_suite()
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite)
        key = queue.unit_keys()[0]
        unit = queue.unit(key)
        assert isinstance(unit, WorkUnit)
        assert unit.key == key
        assert unit.suite == suite.name
        assert unit.scenario.seed is not None
        assert WorkUnit.from_record(unit.to_record()) == unit

    def test_corrupt_unit_reads_as_none(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(twin_suite())
        key = queue.unit_keys()[0]
        (queue.units_dir / f"{key}.json").write_text("{not json")
        assert queue.unit(key) is None

    def test_enqueue_journals_the_event(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(twin_suite())
        events = [
            json.loads(line)
            for line in queue.journal_path.read_text().splitlines()
        ]
        assert any(e.get("event") == "dist.enqueue" for e in events)


class TestStatus:
    def test_progress_tracks_the_store(self, tmp_path):
        suite = twin_suite()
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        queue.enqueue_suite(suite)
        (progress,) = queue.status(store)
        assert (progress.total, progress.done) == (3, 0)
        assert progress.pending == 3 and not progress.complete

        run_suite(suite, store=store)
        (progress,) = queue.status(store)
        assert (progress.total, progress.done) == (3, 3)
        assert progress.complete
        assert "complete" in progress.summary()

    def test_worker_stats_round_trip(self, tmp_path):
        queue = WorkQueue(tmp_path / "queue")
        assert queue.worker_stats() == {}
        queue.write_worker_stats("w0", {"simulated": 2})
        queue.write_worker_stats("w1", {"simulated": 1})
        stats = queue.worker_stats()
        assert set(stats) == {"w0", "w1"}
        assert stats["w0"]["simulated"] == 2
