"""Tests for the lease protocol: exclusivity, expiry, reclaim, ownership."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.dist.lease import DEFAULT_TTL_SECONDS, Heartbeat, Lease, LeaseBroker


KEY = "a" * 64


class TestAcquire:
    def test_acquire_creates_lease_file(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=60)
        lease = broker.acquire(KEY)
        assert lease is not None
        assert lease.path.is_file()
        payload = json.loads(lease.path.read_text())
        assert payload["key"] == KEY
        assert payload["token"] == lease.token
        assert payload["pid"] == os.getpid()

    def test_second_acquire_loses(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=60)
        assert broker.acquire(KEY) is not None
        rival = LeaseBroker(tmp_path, ttl=60, owner="rival")
        assert rival.acquire(KEY) is None
        assert rival.contended == 1

    def test_release_frees_the_slot(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=60)
        lease = broker.acquire(KEY)
        assert lease.release()
        assert not lease.path.exists()
        assert broker.acquire(KEY) is not None

    def test_double_release_is_safe(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=60)
        lease = broker.acquire(KEY)
        assert lease.release()
        assert not lease.release()

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseBroker(tmp_path, ttl=0)

    def test_exactly_one_concurrent_winner(self, tmp_path):
        # N threads race one key through independent brokers (one per
        # claimant, as in a real fleet); exactly one may hold the lease.
        winners = []
        barrier = threading.Barrier(8)

        def contend(i: int) -> None:
            broker = LeaseBroker(tmp_path, ttl=60, owner=f"w{i}")
            barrier.wait()
            lease = broker.acquire(KEY)
            if lease is not None:
                winners.append(lease)

        threads = [threading.Thread(target=contend, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


class TestExpiry:
    def test_expired_lease_is_reclaimed(self, tmp_path):
        dead = LeaseBroker(tmp_path, ttl=0.05, owner="dead")
        stale = dead.acquire(KEY)
        assert stale is not None
        time.sleep(0.1)
        heir = LeaseBroker(tmp_path, ttl=0.05, owner="heir")
        lease = heir.acquire(KEY)
        assert lease is not None
        assert heir.reclaimed == 1
        # The original owner must not be able to release the new claim.
        assert not stale.release()
        assert lease.path.is_file()

    def test_live_lease_is_not_reclaimed(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=60)
        assert broker.acquire(KEY) is not None
        rival = LeaseBroker(tmp_path, ttl=60, owner="rival")
        assert rival.acquire(KEY) is None
        assert rival.reclaimed == 0

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=0.4)
        lease = broker.acquire(KEY)
        rival = LeaseBroker(tmp_path, ttl=0.4, owner="rival")
        with Heartbeat(lease, interval=0.05):
            deadline = time.monotonic() + 0.8
            while time.monotonic() < deadline:
                assert rival.acquire(KEY) is None
                time.sleep(0.05)
        assert lease.release()

    def test_heartbeat_refuses_a_reclaimed_lease(self, tmp_path):
        broker = LeaseBroker(tmp_path, ttl=0.05)
        lease = broker.acquire(KEY)
        time.sleep(0.1)
        heir = LeaseBroker(tmp_path, ttl=0.05, owner="heir")
        assert heir.acquire(KEY) is not None
        assert not lease.heartbeat()

    def test_active_leases_reports_expiry(self, tmp_path):
        probe = LeaseBroker(tmp_path, ttl=0.2)
        probe.acquire("b" * 64)
        time.sleep(0.3)
        probe.acquire("c" * 64)
        leases = probe.active_leases()
        assert leases == {"b" * 64: True, "c" * 64: False}

    def test_default_ttl_is_generous(self):
        assert DEFAULT_TTL_SECONDS >= 60
