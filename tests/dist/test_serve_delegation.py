"""The daemon delegating suite jobs to the distributed work queue."""

from __future__ import annotations

import threading
import time

from repro.bench.store import ResultStore
from repro.dist import WorkQueue, run_worker
from repro.serve.daemon import ReproServer, ServeConfig
from repro.serve.service import EvaluationService, resolve_submission


class TestDelegatedSuite:
    def test_suite_job_is_drained_by_external_workers(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        service = EvaluationService(
            store=store, dist_queue=queue, dist_poll_interval=0.05
        )
        evaluation = resolve_submission({"suite": "smoke"})

        stop = threading.Event()

        def drain() -> None:
            # A stand-in for `repro dist worker` on another host: keep
            # sweeping until the delegating thread has what it needs.
            while not stop.is_set():
                run_worker(queue, store, once=True, worker_id="bg")
                time.sleep(0.02)

        worker = threading.Thread(target=drain, daemon=True)
        worker.start()
        progress_calls = []
        try:
            payload = service._execute_delegated_suite(
                evaluation, lambda done, total, cached: progress_calls.append(
                    (done, total, cached)
                ),
            )
        finally:
            stop.set()
            worker.join(30)

        assert payload["suite"] == "smoke"
        assert payload["delegated"]["units"] == evaluation.total
        assert payload["delegated"]["queue"] == str(queue.root)
        assert queue.pending_keys(store) == []
        # Progress reached completion, and a cold store means nothing was
        # reported as a pre-existing cache hit.
        assert progress_calls[-1][:2] == (evaluation.total, evaluation.total)
        assert not any(cached for _done, _total, cached in progress_calls)

    def test_warm_store_reports_cached_progress(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        queue = WorkQueue(tmp_path / "queue")
        service = EvaluationService(
            store=store, dist_queue=queue, dist_poll_interval=0.05
        )
        evaluation = resolve_submission({"suite": "smoke"})
        # First delegation with an inline drain (allowed: enqueue then run a
        # worker to completion before polling even starts).
        queue.enqueue_suite(evaluation.suite, store=store)
        run_worker(queue, store, worker_id="warmup")

        progress_calls = []
        payload = service._execute_delegated_suite(
            evaluation, lambda done, total, cached: progress_calls.append(cached)
        )
        assert payload["delegated"]["already_stored"] == evaluation.total
        assert all(progress_calls)  # every unit was a pre-existing entry

    def test_server_wires_the_queue_from_config(self, tmp_path):
        config = ServeConfig(
            store=str(tmp_path / "store"),
            dist_queue=str(tmp_path / "queue"),
            use_journal=False,
        )
        server = ReproServer(config)
        assert isinstance(server.service.dist_queue, WorkQueue)
        assert server.service.dist_queue.root == tmp_path / "queue"

    def test_no_queue_means_local_execution(self, tmp_path):
        server = ReproServer(
            ServeConfig(store=str(tmp_path / "store"), use_journal=False)
        )
        assert server.service.dist_queue is None
