"""Tests for the evaluation service: coalescing, caching, backpressure, drain.

The harness boots the real asyncio daemon on an ephemeral port in a
background thread and talks to it over real HTTP (``http.client``), so
these tests cover the full stack: request parsing, routing, the admission
queue, the executor, and the content-addressed store underneath.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.bench.runner import SuiteRunResult
from repro.serve.daemon import ReproServer, ServeConfig
from repro.serve.service import (
    EvaluationService,
    SubmissionError,
    resolve_submission,
)

import http.client


SCENARIO = {
    "scenario": {
        "workload": "uniform",
        "jobs": 40,
        "machine_size": 32,
        "load": 0.6,
        "seed": 7,
    }
}


def scenario_body(seed: int = 7) -> str:
    payload = {"scenario": dict(SCENARIO["scenario"], seed=seed)}
    return json.dumps(payload)


class ServerHarness:
    """The daemon in a background thread, reachable over real sockets."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._started = threading.Event()
        self._failure = None
        self.loop = None
        self.server = None
        self.host = None
        self.port = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface boot failures to the test
            self._failure = exc
            self._started.set()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ReproServer(self.config)
        self.host, self.port = await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def start(self) -> "ServerHarness":
        self._thread.start()
        assert self._started.wait(15), "server did not boot"
        if self._failure is not None:
            raise self._failure
        return self

    def stop(self) -> None:
        if self._thread.is_alive() and self.loop is not None and self._stop is not None:
            try:
                self.loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed by a concurrent stop()
        self._thread.join(60)
        assert not self._thread.is_alive(), "server did not drain"

    def request(self, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def json(self, method, path, body=None, headers=None):
        status, resp_headers, data = self.request(method, path, body, headers)
        return status, resp_headers, json.loads(data)

    def wait_for_state(self, job_id: str, states=("done", "failed"), timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _status, _headers, info = self.json("GET", f"/v1/runs/{job_id}")
            if info["state"] in states:
                return info
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never reached {states}")


@pytest.fixture
def harness(tmp_path):
    servers = []

    def _make(**overrides) -> ServerHarness:
        config = ServeConfig(
            host="127.0.0.1",
            port=0,
            store=str(tmp_path / "store"),
            **overrides,
        )
        server = ServerHarness(config).start()
        servers.append(server)
        return server

    yield _make
    for server in servers:
        server.stop()


def fake_suite_result() -> SuiteRunResult:
    return SuiteRunResult(
        suite="smoke",
        metrics=("mean_wait",),
        confidence=0.95,
        replications=[],
        cache_hits=0,
        cache_misses=6,
        elapsed_seconds=0.01,
    )


class TestSubmissionResolution:
    def test_suite_and_scenario_digests_are_stable(self):
        a = resolve_submission({"suite": "smoke"})
        b = resolve_submission({"suite": "smoke"})
        assert a.digest == b.digest and a.kind == "suite" and a.total == 6

        c = resolve_submission(SCENARIO)
        d = resolve_submission({"scenario": dict(SCENARIO["scenario"])})
        assert c.digest == d.digest and c.kind == "scenario" and c.total == 1

    def test_different_submissions_get_different_digests(self):
        base = resolve_submission(SCENARIO)
        other = resolve_submission(
            {"scenario": dict(SCENARIO["scenario"], seed=8)}
        )
        assert base.digest != other.digest
        assert resolve_submission({"suite": "smoke"}).digest != base.digest

    def test_invalid_submissions_rejected(self):
        for bad in (
            None,
            [],
            {},
            {"suite": 7},
            {"suite": "no-such-suite"},
            {"scenario": "not-an-object"},
            {"scenario": {"workload": "uniform", "policy": "no-such-policy"}},
        ):
            with pytest.raises(SubmissionError):
                resolve_submission(bad)

    def test_service_validates_bounds(self):
        with pytest.raises(ValueError):
            EvaluationService(workers=0)
        with pytest.raises(ValueError):
            EvaluationService(queue_limit=0)


class TestEndToEnd:
    def test_submit_poll_result_report(self, harness):
        server = harness(workers=1)
        status, _headers, info = server.json(
            "POST", "/v1/runs", body=scenario_body()
        )
        assert status == 202
        assert info["coalesced"] is False and info["kind"] == "scenario"
        job_id = info["id"]

        final = server.wait_for_state(job_id)
        assert final["state"] == "done"
        assert final["progress"] == {
            "done": 1, "total": 1, "cache_hits": 0, "cache_misses": 1,
        }
        assert final["links"]["result"] == f"/v1/results/{job_id}"

        status, headers, payload = server.json("GET", f"/v1/results/{job_id}")
        assert status == 200
        assert payload["digest"] == job_id
        assert payload["metrics"]["jobs"] == 40
        assert headers["ETag"] == f'"{job_id}"'

        status, headers, page = server.request("GET", f"/v1/reports/{job_id}")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        text = page.decode("utf-8")
        assert "<!DOCTYPE html>" in text and job_id in text and "uniform" in text

    def test_resubmission_after_completion_reuses_the_job(self, harness):
        server = harness(workers=1)
        _s, _h, first = server.json("POST", "/v1/runs", body=scenario_body())
        server.wait_for_state(first["id"])
        status, _h, second = server.json("POST", "/v1/runs", body=scenario_body())
        assert status == 200
        assert second["id"] == first["id"] and second["coalesced"] is True
        assert server.server.service.stats["executed"] == 1

    def test_restarted_daemon_replays_journal_without_rerunning(self, harness):
        # Two daemons sharing one store + journal: the second replays the
        # journal at boot, so the finished digest is already known — no
        # re-simulation, not even a store lookup until the result is asked.
        first = harness(workers=1)
        _s, _h, info = first.json("POST", "/v1/runs", body=scenario_body())
        final = first.wait_for_state(info["id"])
        assert final["progress"]["cache_misses"] == 1
        first.stop()

        second = harness(workers=1)
        status, _h, replayed = second.json("GET", f"/v1/runs/{info['id']}")
        assert status == 200
        assert replayed["state"] == "done" and replayed.get("replayed") is True

        status, _h, info2 = second.json("POST", "/v1/runs", body=scenario_body())
        assert status == 200
        assert info2["id"] == info["id"] and info2["coalesced"] is True
        assert second.server.service.stats["executed"] == 0

        # The payload rebuilds lazily from the warm store on first request.
        status, _h, payload = second.json("GET", f"/v1/results/{info['id']}")
        assert status == 200 and payload["digest"] == info["id"]

    def test_fresh_daemon_without_journal_serves_store_hits(self, harness):
        # With the journal off, a restart forgets the job but the shared
        # store still answers: the re-run is pure cache hits.
        first = harness(workers=1, use_journal=False)
        _s, _h, info = first.json("POST", "/v1/runs", body=scenario_body())
        final = first.wait_for_state(info["id"])
        assert final["progress"]["cache_misses"] == 1
        first.stop()

        second = harness(workers=1, use_journal=False)
        _s, _h, info2 = second.json("POST", "/v1/runs", body=scenario_body())
        assert info2["id"] == info["id"]
        final2 = second.wait_for_state(info2["id"])
        assert final2["progress"] == {
            "done": 1, "total": 1, "cache_hits": 1, "cache_misses": 0,
        }

    def test_etag_304_round_trip(self, harness):
        server = harness(workers=1)
        _s, _h, info = server.json("POST", "/v1/runs", body=scenario_body())
        server.wait_for_state(info["id"])
        job_id = info["id"]

        status, headers, body = server.request("GET", f"/v1/results/{job_id}")
        etag = headers["ETag"]
        assert status == 200 and etag == f'"{job_id}"' and body

        for conditional in (etag, f'"zzz", {etag}', "*"):
            status, headers, body = server.request(
                "GET", f"/v1/results/{job_id}",
                headers={"If-None-Match": conditional},
            )
            assert status == 304 and body == b""
            assert headers["ETag"] == etag

        status, _headers, body = server.request(
            "GET", f"/v1/results/{job_id}", headers={"If-None-Match": '"other"'}
        )
        assert status == 200 and body

        # The HTML report is equally digest-keyed.
        status, _headers, _body = server.request(
            "GET", f"/v1/reports/{job_id}", headers={"If-None-Match": etag}
        )
        assert status == 304


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_run(
        self, harness, monkeypatch
    ):
        gate = threading.Event()
        calls = []

        def slow_run_suite(suite, workers=None, store=None, use_cache=True,
                           progress=None, **_kwargs):
            calls.append(suite.name)
            assert gate.wait(30)
            return fake_suite_result()

        monkeypatch.setattr("repro.serve.service.run_suite", slow_run_suite)
        server = harness(workers=2)
        body = json.dumps({"suite": "smoke"})

        status1, _h, first = server.json("POST", "/v1/runs", body=body)
        server.wait_for_state(first["id"], states=("running",))
        status2, _h, second = server.json("POST", "/v1/runs", body=body)

        assert status1 == 202 and status2 == 200
        assert first["id"] == second["id"]
        assert second["coalesced"] is True and second["state"] == "running"

        gate.set()
        final = server.wait_for_state(first["id"])
        assert final["state"] == "done"
        # Exactly one underlying evaluation ran for the two submissions.
        assert calls == ["smoke"]
        assert server.server.service.stats["coalesced"] == 1

        status, _headers, payload = server.json(
            "GET", f"/v1/results/{first['id']}"
        )
        assert status == 200 and payload["suite"] == "smoke"


class TestBackpressure:
    def test_queue_limit_returns_429_with_retry_after(self, harness, monkeypatch):
        gate = threading.Event()

        def slow_run_suite(suite, **_kwargs):
            assert gate.wait(30)
            return fake_suite_result()

        monkeypatch.setattr("repro.serve.service.run_suite", slow_run_suite)
        server = harness(workers=1, queue_limit=1)

        # Occupy the single worker, then the single queue slot.
        _s, _h, blocker = server.json(
            "POST", "/v1/runs", body=json.dumps({"suite": "smoke"})
        )
        server.wait_for_state(blocker["id"], states=("running",))
        status_queued, _h, queued = server.json(
            "POST", "/v1/runs", body=scenario_body(seed=1)
        )
        assert status_queued == 202 and queued["state"] == "queued"

        status, headers, rejected = server.json(
            "POST", "/v1/runs", body=scenario_body(seed=2)
        )
        assert status == 429
        assert "Retry-After" in headers and int(headers["Retry-After"]) >= 1
        assert "queue is full" in rejected["error"]
        assert server.server.service.stats["rejected"] == 1

        # Identical resubmissions coalesce even under backpressure.
        status, _headers, again = server.json(
            "POST", "/v1/runs", body=scenario_body(seed=1)
        )
        assert status == 200 and again["id"] == queued["id"]

        gate.set()
        assert server.wait_for_state(blocker["id"])["state"] == "done"
        assert server.wait_for_state(queued["id"])["state"] == "done"

    def test_draining_service_rejects_with_503(self, harness):
        server = harness(workers=1)
        server.server.service.draining = True
        status, _headers, info = server.json(
            "POST", "/v1/runs", body=scenario_body()
        )
        assert status == 503 and "draining" in info["error"]


class TestGracefulShutdown:
    def test_drain_finishes_in_flight_work(self, harness, monkeypatch):
        gate = threading.Event()

        def slow_run_suite(suite, **_kwargs):
            assert gate.wait(30)
            return fake_suite_result()

        monkeypatch.setattr("repro.serve.service.run_suite", slow_run_suite)
        server = harness(workers=1)
        _s, _h, info = server.json(
            "POST", "/v1/runs", body=json.dumps({"suite": "smoke"})
        )
        server.wait_for_state(info["id"], states=("running",))

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        time.sleep(0.2)
        assert stopper.is_alive(), "stop() must wait for the in-flight run"
        gate.set()
        stopper.join(60)
        assert not stopper.is_alive()

        # The drained daemon completed the job and kept its payload.
        service = server.server.service
        job = service.jobs[info["id"]]
        assert job.state == "done"
        assert info["id"] in service.results


class TestErrorsAndIntrospection:
    def test_malformed_and_unknown_requests(self, harness):
        server = harness(workers=1)
        assert server.request("POST", "/v1/runs", body="{nope")[0] == 400
        assert server.request("POST", "/v1/runs", body="")[0] == 400
        status, _h, info = server.json(
            "POST", "/v1/runs", body=json.dumps({"suite": "smokey"})
        )
        assert status == 400 and "smoke" in info["error"]  # did-you-mean
        assert server.request("GET", "/v1/runs/" + "0" * 64)[0] == 404
        assert server.request("GET", "/v1/results/" + "0" * 64)[0] == 404
        assert server.request("GET", "/v1/nope")[0] == 404
        assert server.request("DELETE", "/v1/runs")[0] == 404

    def test_result_of_unfinished_job_is_404_with_state(
        self, harness, monkeypatch
    ):
        gate = threading.Event()

        def slow_run_suite(suite, **_kwargs):
            assert gate.wait(30)
            return fake_suite_result()

        monkeypatch.setattr("repro.serve.service.run_suite", slow_run_suite)
        server = harness(workers=1)
        _s, _h, info = server.json(
            "POST", "/v1/runs", body=json.dumps({"suite": "smoke"})
        )
        status, _headers, body = server.json("GET", f"/v1/results/{info['id']}")
        assert status == 404 and body["state"] in ("queued", "running")
        gate.set()
        server.wait_for_state(info["id"])

    def test_failed_job_reports_its_error(self, harness, monkeypatch):
        def broken_run_suite(suite, **_kwargs):
            raise RuntimeError("simulator exploded")

        monkeypatch.setattr("repro.serve.service.run_suite", broken_run_suite)
        server = harness(workers=1)
        _s, _h, info = server.json(
            "POST", "/v1/runs", body=json.dumps({"suite": "smoke"})
        )
        final = server.wait_for_state(info["id"])
        assert final["state"] == "failed"
        assert "simulator exploded" in final["error"]
        assert server.request("GET", f"/v1/results/{info['id']}")[0] == 404

    def test_healthz_and_run_listing(self, harness):
        server = harness(workers=1)
        status, _headers, health = server.json("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["queue_limit"] == 8 and health["workers"] == 1

        _s, _h, info = server.json("POST", "/v1/runs", body=scenario_body())
        server.wait_for_state(info["id"])
        status, _headers, listing = server.json("GET", "/v1/runs")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [info["id"]]


class TestJournalAndEvents:
    def test_crash_mid_job_is_forgotten_and_rerun(self, harness, tmp_path):
        # Simulate a crash before the terminal event hit the journal: strip
        # the "done" line.  The restarted daemon must NOT claim the digest
        # finished — the job is forgotten and a resubmission re-runs it
        # (served from the still-warm store).
        first = harness(workers=1)
        _s, _h, info = first.json("POST", "/v1/runs", body=scenario_body())
        first.wait_for_state(info["id"])
        first.stop()

        journal = tmp_path / "store" / "journal.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        events = [json.loads(line)["event"] for line in lines]
        assert events[-1] == "done"
        journal.write_text(
            "".join(l for l in lines if json.loads(l)["event"] != "done")
        )

        second = harness(workers=1)
        stats = second.server.service.replay_stats
        assert stats["jobs_restored"] == 0 and stats["events"] == len(events) - 1
        assert second.request("GET", f"/v1/runs/{info['id']}")[0] == 404

        status, _h, info2 = second.json("POST", "/v1/runs", body=scenario_body())
        assert status == 202 and info2["coalesced"] is False
        final = second.wait_for_state(info2["id"])
        assert final["progress"]["cache_hits"] == 1
        assert second.server.service.stats["executed"] == 1

    def test_events_stream_until_terminal_state(self, harness, monkeypatch):
        gate = threading.Event()

        def slow_run_suite(suite, **_kwargs):
            assert gate.wait(30)
            return fake_suite_result()

        monkeypatch.setattr("repro.serve.service.run_suite", slow_run_suite)
        server = harness(workers=1)
        _s, _h, info = server.json(
            "POST", "/v1/runs", body=json.dumps({"suite": "smoke"})
        )
        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            conn.request("GET", f"/v1/runs/{info['id']}/events")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            # The stream starts with history (queued) and follows the job
            # live; it only closes once the terminal event has been sent.
            first = json.loads(response.readline())
            assert first["event"] == "queued" and first["digest"] == info["id"]
            assert first["kind"] == "suite" and "ts" in first
            gate.set()
            rest = [json.loads(line) for line in response if line.strip()]
            assert [e["event"] for e in rest][-1] == "done"
            assert rest[0]["event"] == "running"
        finally:
            conn.close()

    def test_replayed_job_stream_closes_after_history(self, harness):
        first = harness(workers=1)
        _s, _h, info = first.json("POST", "/v1/runs", body=scenario_body())
        first.wait_for_state(info["id"])
        first.stop()

        second = harness(workers=1)
        status, headers, body = second.request(
            "GET", f"/v1/runs/{info['id']}/events"
        )
        assert status == 200
        events = [json.loads(line) for line in body.splitlines() if line]
        assert [e["event"] for e in events][0] == "queued"
        assert [e["event"] for e in events][-1] == "done"

    def test_events_for_unknown_digest_404(self, harness):
        server = harness(workers=1)
        assert server.request("GET", "/v1/runs/" + "0" * 64 + "/events")[0] == 404

    def test_healthz_and_metrics_expose_journal_stats(self, harness, tmp_path):
        server = harness(workers=1)
        _s, _h, info = server.json("POST", "/v1/runs", body=scenario_body())
        server.wait_for_state(info["id"])

        _s, _h, health = server.json("GET", "/v1/healthz")
        journal = health["journal"]
        assert journal["path"] == str(tmp_path / "store" / "journal.jsonl")
        assert journal["size_bytes"] > 0
        assert journal["events_appended"] >= 3  # queued, running, done
        assert journal["replay"]["events"] == 0  # fresh journal: nothing replayed

        text = server.request("GET", "/v1/metrics")[2].decode("utf-8")
        assert "repro_journal_size_bytes" in text
        assert "repro_journal_events_appended" in text
        assert 'repro_journal_replay{stat="jobs_restored"} 0' in text

    def test_healthz_journal_null_when_disabled(self, harness):
        server = harness(workers=1, use_journal=False)
        _s, _h, health = server.json("GET", "/v1/healthz")
        assert health["journal"] is None


class TestObservability:
    def test_healthz_reports_uptime_and_worker_utilization(self, harness):
        server = harness(workers=2)
        status, _headers, health = server.json("GET", "/v1/healthz")
        assert status == 200
        assert health["uptime_seconds"] >= 0
        assert health["workers_busy"] == 0
        assert health["worker_utilization"] == 0.0
        assert health["queue_depth"] == 0

    def test_metrics_exposition_counts_requests_and_jobs(self, harness):
        server = harness(workers=1)
        _s, _h, info = server.json("POST", "/v1/runs", body=scenario_body())
        server.wait_for_state(info["id"])
        server.json("GET", f"/v1/runs/{info['id']}")

        status, headers, body = server.request("GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        text = body.decode("utf-8")

        # request counters by method + route template (polling runs through
        # wait_for_state, so the exact /v1/runs/{id} count is unknown but > 0)
        assert 'repro_http_requests_total{method="POST",route="/v1/runs",status="202"} 1' in text
        assert 'repro_http_requests_total{method="GET",route="/v1/runs/{id}"' in text
        # job lifecycle metrics
        assert 'repro_jobs_total{kind="scenario",state="done"} 1' in text
        assert 'repro_job_seconds_bucket{kind="scenario",le="+Inf"} 1' in text
        assert 'repro_job_seconds_count{kind="scenario"} 1' in text
        # live gauges set at scrape time
        assert "repro_uptime_seconds" in text
        assert "repro_queue_depth 0" in text
        assert 'repro_submissions{outcome="executed"} 1' in text

    def test_metrics_scrape_does_not_count_itself(self, harness):
        server = harness(workers=1)
        first = server.request("GET", "/v1/metrics")[2].decode("utf-8")
        assert 'route="/v1/metrics"' not in first
        second = server.request("GET", "/v1/metrics")[2].decode("utf-8")
        # the second scrape sees exactly the first one recorded
        assert 'repro_http_requests_total{method="GET",route="/v1/metrics",status="200"} 1' in second

    def test_metrics_output_is_well_formed_exposition(self, harness):
        server = harness(workers=1)
        server.json("GET", "/v1/healthz")
        text = server.request("GET", "/v1/metrics")[2].decode("utf-8")
        assert text.endswith("\n")
        seen_types = {}
        for line in text.splitlines():
            assert line, "no blank lines in exposition output"
            if line.startswith("# TYPE"):
                _hash, _type, name, kind = line.split()
                assert kind in ("counter", "gauge", "histogram")
                assert name not in seen_types, "one TYPE line per family"
                seen_types[name] = kind
        # every sample belongs to a declared family
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in seen_types:
                    base = name[: -len(suffix)]
            assert base in seen_types

    def test_coalesced_submissions_counted(self, harness, monkeypatch):
        release = threading.Event()

        def slow_run_suite(*args, **kwargs):
            release.wait(30)
            return fake_suite_result()

        monkeypatch.setattr("repro.serve.service.run_suite", slow_run_suite)
        server = harness(workers=1)
        try:
            first = server.json("POST", "/v1/runs", body='{"suite": "smoke"}')[2]
            second = server.json("POST", "/v1/runs", body='{"suite": "smoke"}')[2]
            assert second["id"] == first["id"] and second["coalesced"] is True
            text = server.request("GET", "/v1/metrics")[2].decode("utf-8")
            # one admission, one coalesce — "submitted" counts admissions only
            assert 'repro_submissions{outcome="coalesced"} 1' in text
            assert 'repro_submissions{outcome="submitted"} 1' in text
        finally:
            release.set()
