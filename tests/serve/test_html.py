"""Tests for the self-contained HTML report renderer."""

from __future__ import annotations

from repro.serve.html import render_report

SUITE_PAYLOAD = {
    "kind": "suite",
    "digest": "d" * 64,
    "suite": "smoke",
    "confidence": 0.95,
    "metrics": ["mean_wait", "utilization"],
    "replications": 6,
    "cache_hits": 2,
    "cache_misses": 4,
    "elapsed_seconds": 1.25,
    "cases": [
        {
            "case": "uniform@0.70/fcfs",
            "context": "uniform@0.70",
            "policy": "fcfs",
            "seeds": 3,
            "metrics": {
                "mean_wait": {"mean": 123.4, "lo": 100.0, "hi": 150.0,
                              "half_width": 25.0},
                "utilization": {"mean": 0.71, "lo": 0.69, "hi": 0.73,
                                "half_width": 0.02},
            },
        }
    ],
}

SCENARIO_PAYLOAD = {
    "kind": "scenario",
    "digest": "e" * 64,
    "label": "uniform/easy",
    "scenario": {"workload": "uniform", "policy": "easy", "jobs": 40,
                 "seed": 7, "machine_size": 32, "load": 0.6, "name": None},
    "metrics": {"scheduler": "easy-backfill", "jobs": 40, "mean_wait": 5.2},
}


class TestSuiteReport:
    def test_page_is_self_contained_html(self):
        page = render_report(SUITE_PAYLOAD)
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page
        # No external references: the page renders offline.
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page

    def test_suite_facts_and_cells(self):
        page = render_report(SUITE_PAYLOAD)
        assert "smoke" in page and "d" * 64 in page
        assert "95%" in page  # confidence
        assert "uniform@0.70" in page and "fcfs" in page
        assert "123.4 ± 25" in page  # mean ± half-width
        assert 'title="[100, 150]"' in page  # hover interval

    def test_missing_metric_renders_placeholder(self):
        payload = dict(SUITE_PAYLOAD, metrics=["mean_wait", "not_measured"])
        page = render_report(payload)
        assert "—" in page


class TestScenarioReport:
    def test_scenario_facts_and_metrics(self):
        page = render_report(SCENARIO_PAYLOAD)
        assert "uniform/easy" in page and "e" * 64 in page
        assert "easy-backfill" in page and "5.2" in page
        # None-valued scenario fields are dropped from the facts list.
        assert "<dt>name</dt>" not in page


class TestEscaping:
    def test_user_controlled_strings_are_escaped(self):
        payload = dict(
            SCENARIO_PAYLOAD,
            label='<script>alert("x")</script>',
            scenario={"workload": "<b>&uniform</b>", "policy": 'e"vil'},
            metrics={"scheduler": "<img src=x>"},
        )
        page = render_report(payload)
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page
        assert "<b>&uniform</b>" not in page
        assert "&lt;b&gt;&amp;uniform&lt;/b&gt;" in page
        assert "<img" not in page

    def test_unknown_kind_falls_back_to_suite_view(self):
        page = render_report({"digest": "f" * 64, "suite": "mystery"})
        assert "mystery" in page and "f" * 64 in page


class TestObservabilityFacts:
    def test_served_fact_and_timing_table_render(self):
        payload = dict(
            SUITE_PAYLOAD,
            cache_hits=6,
            cache_misses=0,
            served="served entirely from cache (6 hits, 0 simulated)",
            timings={"cache_lookup_seconds": 0.004, "total_seconds": 0.005},
        )
        page = render_report(payload)
        assert "served entirely from cache" in page
        assert "Timing breakdown" in page
        assert "cache_lookup" in page and "0.004" in page

    def test_payloads_without_served_or_timings_still_render(self):
        page = render_report(SUITE_PAYLOAD)
        assert "Timing breakdown" not in page
        assert "<!DOCTYPE html>" in page
