"""Tests for suites, the cache-aware runner, and pairwise comparison."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.api.registry import UnknownNameError
from repro.bench.report import (
    comparison_json,
    comparison_markdown,
    report_from_store,
    suite_json,
    suite_markdown,
)
from repro.bench.runner import compare_policies, mean_report, run_suite
from repro.bench.seeds import derive_seeds
from repro.bench.store import ResultStore
from repro.bench.suite import BenchmarkCase, BenchmarkSuite, get_suite, suite_names


def tiny_suite(policies=("fcfs", "easy"), jobs=40, n_seeds=3) -> BenchmarkSuite:
    scenario = Scenario(workload="uniform", jobs=jobs, machine_size=32, load=0.7)
    return BenchmarkSuite(
        name="tiny",
        description="unit-test suite",
        cases=tuple(
            BenchmarkCase(
                context="uniform@0.70",
                scenario=scenario.with_(policy=policy),
                seeds=tuple(derive_seeds(1, n_seeds)),
            )
            for policy in policies
        ),
        metrics=("mean_wait", "mean_bounded_slowdown", "utilization"),
    )


class TestSuiteDefinitions:
    def test_builtin_roster(self):
        assert {"smoke", "std-space", "std-gang", "std-grid", "std-outage",
                "std-feedback"} <= set(suite_names())

    def test_builtin_suites_materialize(self):
        # Statistical suites need replications for confidence intervals;
        # the perf-trajectory scale suites deliberately run one seed —
        # they measure wall-clock, not workload-to-workload variability.
        single_seed_ok = {"std-scale", "std-scale-smoke"}
        for name in suite_names():
            suite = get_suite(name)
            assert suite.cases
            floor = 1 if name in single_seed_ok else 3
            assert all(len(case.seeds) >= floor for case in suite.cases)

    def test_unknown_suite_gets_did_you_mean(self):
        with pytest.raises(UnknownNameError, match="smoke"):
            get_suite("smokey")

    def test_with_policies_keeps_contexts_and_seeds(self):
        suite = get_suite("std-space").with_policies(["fcfs", "backfill"])
        contexts = {case.context for case in suite.cases}
        assert len(suite.cases) == 2 * len(contexts)
        # Common random numbers: both policies see identical seed lists.
        by_context = {}
        for case in suite.cases:
            by_context.setdefault(case.context, set()).add(case.seeds)
        assert all(len(seed_sets) == 1 for seed_sets in by_context.values())

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="empty seed list"):
            BenchmarkCase(context="c", scenario=Scenario(workload="uniform"), seeds=())

    def test_duplicate_case_names_rejected(self):
        case = tiny_suite().cases[0]
        with pytest.raises(ValueError, match="duplicate"):
            BenchmarkSuite(name="dup", description="", cases=(case, case))


class TestRunSuite:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_suite(tiny_suite(), workers=1)
        parallel = run_suite(tiny_suite(), workers=2)
        assert [o.report for o in serial.replications] == [
            o.report for o in parallel.replications
        ]
        for a, b in zip(serial.aggregates(), parallel.aggregates()):
            assert a.cis == b.cis

    def test_second_run_is_served_from_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_suite(tiny_suite(), store=store)
        assert (first.cache_hits, first.cache_misses) == (0, 6)
        second = run_suite(tiny_suite(), store=store)
        assert (second.cache_hits, second.cache_misses) == (6, 0)
        assert [o.report for o in first.replications] == [
            o.report for o in second.replications
        ]

    def test_any_scenario_change_misses_the_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(tiny_suite(), store=store)
        shifted = run_suite(tiny_suite(jobs=41), store=store)
        assert shifted.cache_hits == 0

    def test_no_cache_reruns_but_still_refreshes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(tiny_suite(), store=store)
        forced = run_suite(tiny_suite(), store=store, use_cache=False)
        assert (forced.cache_hits, forced.cache_misses) == (0, 6)
        assert len(store) == 6

    def test_timing_breakdown_recorded(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_suite(tiny_suite(), store=store)
        expected = {
            "cache_lookup_seconds", "materialize_seconds", "simulate_seconds",
            "metrics_seconds", "store_write_seconds", "total_seconds",
            "other_seconds",
        }
        assert set(cold.timings) == expected
        assert all(v >= 0 for v in cold.timings.values())
        assert cold.timings["simulate_seconds"] > 0
        assert cold.timings["total_seconds"] == pytest.approx(
            cold.elapsed_seconds, abs=1e-3
        )
        # cache-served: the lookup is all that happens, so phases stay ~zero
        warm = run_suite(tiny_suite(), store=store)
        assert warm.timings["simulate_seconds"] == 0

    def test_summary_explains_cache_served_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_suite(tiny_suite(), store=store)
        assert "6 simulated" in cold.summary()
        warm = run_suite(tiny_suite(), store=store)
        assert "all 6 from cache, no simulation ran" in warm.summary()

    def test_stored_entries_record_their_own_run_cost(self, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(tiny_suite(), store=store)
        for entry in store.entries():
            assert entry.elapsed_seconds > 0

    def test_overlapping_suites_share_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(tiny_suite(policies=("fcfs",)), store=store)
        both = run_suite(tiny_suite(policies=("fcfs", "easy")), store=store)
        assert both.cache_hits == 3
        assert both.cache_misses == 3

    def test_replication_matches_direct_run(self):
        # The shared-workload override path must reproduce run(Scenario)
        # exactly, or cached entries would depend on how they were produced.
        from repro.api import run as run_scenario

        result = run_suite(tiny_suite())
        for outcome in result.replications[:2]:
            assert run_scenario(outcome.scenario).report == outcome.report

    def test_duplicate_keys_simulated_once(self):
        # Two cases with identical scenarios (labels differ) share one key:
        # the second is served from the first's simulation, not re-run.
        scenario = Scenario(workload="uniform", jobs=40, machine_size=32,
                            load=0.7, policy="fcfs")
        seeds = tuple(derive_seeds(1, 3))
        suite = BenchmarkSuite(
            name="twins", description="",
            cases=(
                BenchmarkCase(context="a", scenario=scenario, seeds=seeds),
                BenchmarkCase(context="b", scenario=scenario, seeds=seeds),
            ),
            metrics=("mean_wait",),
        )
        result = run_suite(suite)
        assert (result.cache_hits, result.cache_misses) == (0, 3)
        assert result.deduplicated == 3
        by_case = result.by_case()
        assert all(not o.cached for o in by_case["a/fcfs"])
        assert all(o.cached for o in by_case["b/fcfs"])
        assert [o.report for o in by_case["a/fcfs"]] == [
            o.report for o in by_case["b/fcfs"]
        ]

    def test_aggregates_and_rows(self):
        result = run_suite(tiny_suite())
        aggregates = result.aggregates()
        assert [a.policy for a in aggregates] == ["fcfs", "easy"]
        for agg in aggregates:
            assert agg.n == 3
            assert set(agg.cis) == {"mean_wait", "mean_bounded_slowdown", "utilization"}
            ci = agg.cis["mean_wait"]
            assert ci.lo <= agg.summary.mean_wait <= ci.hi
        rows = result.rows()
        assert len(rows) == 2 and "±" in rows[0]["mean_wait"]

    def test_runs_by_registered_name(self, tmp_path):
        result = run_suite("smoke", store=ResultStore(tmp_path))
        assert result.suite == "smoke"
        assert len(result.replications) == get_suite("smoke").replication_count()

    def test_outage_cases_cache_and_rerun(self, tmp_path):
        store = ResultStore(tmp_path)
        scenario = Scenario(workload="uniform", jobs=40, machine_size=32, load=0.7,
                            policy="easy")
        case = BenchmarkCase(
            context="uniform+outages",
            scenario=scenario,
            seeds=tuple(derive_seeds(2, 3)),
            outages={"mtbf_days": 0.5, "horizon_days": 10.0},
        )
        suite = BenchmarkSuite(name="outage-tiny", description="", cases=(case,),
                               metrics=("mean_wait",))
        first = run_suite(suite, store=store)
        second = run_suite(suite, store=store)
        assert second.cache_misses == 0
        assert [o.report for o in first.replications] == [
            o.report for o in second.replications
        ]
        # The outage parameters are key material: changing MTBF re-simulates.
        harsher = BenchmarkSuite(
            name="outage-tiny", description="",
            cases=(BenchmarkCase(
                context="uniform+outages", scenario=scenario,
                seeds=tuple(derive_seeds(2, 3)),
                outages={"mtbf_days": 0.25, "horizon_days": 10.0},
            ),),
            metrics=("mean_wait",),
        )
        assert run_suite(harsher, store=store).cache_hits == 0


class TestMeanReport:
    def test_fieldwise_mean(self):
        reports = [o.report for o in run_suite(tiny_suite()).replications[:3]]
        summary = mean_report(reports)
        assert summary.scheduler == reports[0].scheduler
        expected = sum(r.mean_wait for r in reports) / 3
        assert summary.mean_wait == pytest.approx(expected)
        assert isinstance(summary.jobs, int)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_report([])


class TestComparePolicies:
    def test_verdicts_and_pairing(self, tmp_path):
        store = ResultStore(tmp_path)
        result = compare_policies(tiny_suite(), "fcfs", "easy", store=store)
        assert result.policy_a == "fcfs" and result.policy_b == "easy"
        case = result.cases[0]
        assert case.n == 3
        for metric in case.metrics:
            assert metric.paired.n == 3
            if metric.better is not None:
                assert metric.paired.significant
                assert metric.better in ("fcfs", "easy")
        # Second comparison over the same store is fully cache-served.
        again = compare_policies(tiny_suite(), "fcfs", "easy", store=store)
        assert again.cache_misses == 0

    def test_identical_policies_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            compare_policies(tiny_suite(), "fcfs", "fcfs")

    def test_rows_and_summary(self):
        result = compare_policies(tiny_suite(), "fcfs", "easy")
        rows = result.rows()
        assert len(rows) == 3  # one per suite metric
        assert {row["case"] for row in rows} == {"uniform@0.70"}
        assert "fcfs vs easy" in result.summary()


class TestReports:
    def test_suite_renderings(self, tmp_path):
        result = run_suite(tiny_suite(), store=ResultStore(tmp_path))
        markdown = suite_markdown(result)
        assert "| case |" in markdown and "±" in markdown
        data = suite_json(result)
        assert data["cache_misses"] == 6
        assert len(data["cases"]) == 2
        assert set(data["cases"][0]["metrics"]) == set(result.metrics)

    def test_comparison_renderings(self):
        result = compare_policies(tiny_suite(), "fcfs", "easy")
        markdown = comparison_markdown(result)
        assert "`fcfs` vs `easy`" in markdown
        data = comparison_json(result)
        assert data["cases"][0]["seeds"] == 3

    def test_report_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert "no cached results" in report_from_store(store)
        run_suite(tiny_suite(), store=store)
        text = report_from_store(store, metrics=("mean_wait",))
        assert "`tiny`" in text and "uniform@0.70/fcfs" in text
        assert "no cached results" in report_from_store(store, suite="absent")

    def test_report_from_store_keeps_families_apart(self, tmp_path):
        # Two generations of a case (jobs=40 then jobs=41) share suite and
        # case labels; pooling them into one CI would be meaningless.
        store = ResultStore(tmp_path)
        run_suite(tiny_suite(jobs=40), store=store)
        run_suite(tiny_suite(jobs=41), store=store)
        text = report_from_store(store, metrics=("mean_wait",))
        fcfs_rows = [line for line in text.splitlines()
                     if "uniform@0.70/fcfs" in line]
        assert len(fcfs_rows) == 2
        assert all("[" in row for row in fcfs_rows)  # disambiguated labels
        assert all("| 3 |" in row for row in fcfs_rows)  # 3 seeds each, not 6

    def test_report_from_store_skips_stale_code_versions(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        run_suite(tiny_suite(), store=store)
        monkeypatch.setattr("repro.bench.store.STORE_VERSION", "v999")
        assert "no cached results" in report_from_store(store)


class TestProgressCallback:
    def test_misses_then_hits_report_per_unit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        suite = tiny_suite()  # 2 policies x 3 seeds = 6 unique units

        first = []
        run_suite(suite, store=store,
                  progress=lambda done, total, cached: first.append(
                      (done, total, cached)))
        assert [e[0] for e in first] == [1, 2, 3, 4, 5, 6]
        assert all(total == 6 for _d, total, _c in first)
        assert all(cached is False for _d, _t, cached in first)

        second = []
        run_suite(suite, store=store,
                  progress=lambda done, total, cached: second.append(
                      (done, total, cached)))
        assert [e[0] for e in second] == [1, 2, 3, 4, 5, 6]
        assert all(cached is True for _d, _t, cached in second)

    def test_partial_cache_mixes_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_suite(tiny_suite(policies=("fcfs",)), store=store)
        events = []
        run_suite(tiny_suite(policies=("fcfs", "easy")), store=store,
                  progress=lambda done, total, cached: events.append(cached))
        assert events.count(True) == 3 and events.count(False) == 3
        # Hits arrive first (the cache scan precedes the fan-out).
        assert events[:3] == [True, True, True]

    def test_duplicate_keys_count_as_one_unit(self):
        # Two cases with identical scenarios collapse to one work unit per
        # seed; progress totals must reflect work, not roster size.
        base = tiny_suite(policies=("fcfs",)).cases[0]
        suite = BenchmarkSuite(
            name="dup", description="", metrics=("mean_wait",),
            cases=(base, BenchmarkCase(context=base.context + " (again)",
                                       scenario=base.scenario,
                                       seeds=base.seeds)),
        )
        events = []
        run_suite(suite, progress=lambda done, total, cached: events.append(
            (done, total)))
        assert events == [(1, 3), (2, 3), (3, 3)]

    def test_results_persist_incrementally(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        counts = []
        run_suite(tiny_suite(policies=("fcfs",)), store=store,
                  progress=lambda done, total, cached: counts.append(
                      len(list(store.root.glob("*/*.json")))))
        # Every progress event sees the just-finished unit already on disk.
        assert counts == [1, 2, 3]

    def test_progress_none_is_fine_and_workers_match(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        serial = run_suite(tiny_suite(), store=store)
        events = []
        parallel = run_suite(tiny_suite(jobs=41), workers=2, store=store,
                             progress=lambda d, t, c: events.append(d))
        assert sorted(events) == [1, 2, 3, 4, 5, 6]
        assert serial.cache_misses == parallel.cache_misses == 6
