"""Tests for ``ResultStore.gc``: eviction by staleness, age, and corruption."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import Scenario, run
from repro.bench.store import GCStats, ResultStore, StoredResult, result_key


@pytest.fixture(scope="module")
def report():
    scenario = Scenario(workload="uniform", jobs=30, machine_size=16, load=0.5, seed=3)
    return run(scenario).report


def put_entry(store: ResultStore, seed: int, report) -> str:
    scenario = Scenario(
        workload="uniform", jobs=30, machine_size=16, load=0.5, seed=seed
    )
    key = result_key(scenario)
    store.put(
        StoredResult(key=key, scenario=scenario, report=report, extra={})
    )
    return key


def rewrite_code(store: ResultStore, key: str, code: str) -> None:
    path = store.path_for(key)
    record = json.loads(path.read_text())
    record["code"] = code
    path.write_text(json.dumps(record))


class TestResultStoreGC:
    def test_noop_on_fresh_store(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        keys = [put_entry(store, seed, report) for seed in range(3)]
        stats = store.gc()
        assert (stats.scanned, stats.kept, stats.removed) == (3, 3, {})
        assert stats.freed_bytes == 0
        assert all(store.get(key) is not None for key in keys)

    def test_missing_root_is_empty_stats(self, tmp_path):
        stats = ResultStore(tmp_path / "never-created").gc()
        assert stats.scanned == 0 and not stats.removed

    def test_stale_code_version_is_evicted(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        fresh = put_entry(store, 1, report)
        stale = put_entry(store, 2, report)
        rewrite_code(store, stale, "repro-0.0+store-v0")

        stats = store.gc()
        assert stats.removed == {stale: "stale"}
        assert stats.kept == 1 and stats.freed_bytes > 0
        assert stale not in store and fresh in store

    def test_keep_stale_entries_when_asked(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        stale = put_entry(store, 2, report)
        rewrite_code(store, stale, "repro-0.0+store-v0")
        stats = store.gc(drop_stale=False)
        assert not stats.removed and stale in store

    def test_age_eviction_uses_file_mtime(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        old = put_entry(store, 1, report)
        young = put_entry(store, 2, report)
        week_ago = time.time() - 7 * 86400
        os.utime(store.path_for(old), (week_ago, week_ago))

        stats = store.gc(max_age_days=3)
        assert stats.removed == {old: "expired"}
        assert old not in store and young in store
        # Without a max age, mtimes are irrelevant.
        assert not store.gc().removed

    def test_corrupt_entries_are_evicted(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        victim = put_entry(store, 1, report)
        store.path_for(victim).write_text("{ not json")
        stats = store.gc()
        assert stats.removed == {victim: "corrupt"}
        assert not store.path_for(victim).exists()

    def test_dry_run_reports_without_deleting(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        stale = put_entry(store, 1, report)
        rewrite_code(store, stale, "repro-0.0+store-v0")

        stats = store.gc(dry_run=True)
        assert stats.dry_run and stats.removed == {stale: "stale"}
        assert stale in store  # nothing deleted
        assert "would remove" in stats.summary()

        follow_up = store.gc()
        assert follow_up.removed == {stale: "stale"} and stale not in store

    def test_emptied_shards_are_pruned_and_index_recovers(self, tmp_path, report):
        store = ResultStore(tmp_path / "store")
        keys = [put_entry(store, seed, report) for seed in range(4)]
        assert len(list(store.entries())) == 4  # builds the index
        for key in keys[:2]:
            rewrite_code(store, key, "repro-0.0+store-v0")

        stats = store.gc()
        assert set(stats.removed) == set(keys[:2])
        for key in keys[:2]:
            if not any(store.path_for(k).parent == store.path_for(key).parent
                       for k in keys[2:]):
                assert not store.path_for(key).parent.exists()
        # The lazy index notices the deletions (shard mtimes changed).
        assert {e.key for e in store.entries()} == set(keys[2:])

    def test_summary_counts_reasons(self):
        stats = GCStats(scanned=5, kept=3, freed_bytes=2048,
                        removed={"a": "stale", "b": "expired"})
        text = stats.summary()
        assert "scanned 5" in text and "kept 3" in text
        assert "1 expired" in text and "1 stale" in text
        assert "2.0 KiB" in text
