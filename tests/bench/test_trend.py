"""Tests for perf-trend gating: comparison logic, loaders, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.bench.trend import (
    IMPROVED,
    OK,
    REGRESSION,
    SKIPPED,
    compare_timings,
    load_timings,
    trend_json,
    trend_markdown,
)
from repro.cli import main


def statuses(report):
    return {p.phase: p.status for p in report.phases}


class TestCompareTimings:
    def test_within_tolerance_is_ok(self):
        report = compare_timings({"simulate": 1.0}, {"simulate": 1.4}, tolerance=0.5)
        assert statuses(report) == {"simulate": OK}
        assert report.ok and report.exit_code() == 0

    def test_regression_needs_both_thresholds(self):
        base = {"simulate": 1.0, "tiny": 0.001}
        # simulate blows the ratio AND the absolute floor -> regression;
        # tiny doubles (ratio fails) but moves only 1ms -> under the floor.
        current = {"simulate": 2.0, "tiny": 0.002}
        report = compare_timings(base, current, tolerance=0.5, min_seconds=0.005)
        assert statuses(report) == {"simulate": REGRESSION, "tiny": OK}
        assert report.exit_code() == 1
        assert [p.phase for p in report.regressions] == ["simulate"]

    def test_large_delta_within_ratio_is_ok(self):
        report = compare_timings(
            {"simulate": 10.0}, {"simulate": 12.0}, tolerance=0.5, min_seconds=0.005
        )
        assert statuses(report) == {"simulate": OK}

    def test_improvement_is_informational(self):
        report = compare_timings(
            {"simulate": 2.0}, {"simulate": 0.5}, tolerance=0.5, min_seconds=0.005
        )
        assert statuses(report) == {"simulate": IMPROVED}
        assert report.exit_code() == 0

    def test_one_sided_phases_are_skipped(self):
        report = compare_timings({"old": 1.0}, {"new": 1.0})
        assert statuses(report) == {"new": SKIPPED, "old": SKIPPED}
        assert report.exit_code() == 0

    def test_phases_sorted_by_name(self):
        report = compare_timings({"b": 1.0, "a": 1.0}, {"c": 1.0, "a": 1.0})
        assert [p.phase for p in report.phases] == ["a", "b", "c"]

    def test_ratio_undefined_for_zero_baseline(self):
        report = compare_timings({"warm": 0.0}, {"warm": 0.001})
        (phase,) = report.phases
        assert phase.ratio is None and phase.delta == pytest.approx(0.001)

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ValueError):
            compare_timings({}, {}, tolerance=-0.1)
        with pytest.raises(ValueError):
            compare_timings({}, {}, min_seconds=-1)


class TestLoadTimings:
    def test_bench_trajectory_file_uses_cold_timings(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({
            "benchmark": "bench_smoke",
            "cold_timings": {"simulate_seconds": 1.0},
            "warm_seconds": 0.1,
        }))
        timings, label = load_timings(path)
        assert timings == {"simulate_seconds": 1.0}
        assert label == "bench_smoke (cold)"

    def test_suite_dump_uses_timings(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"suite": "smoke", "timings": {"total_seconds": 2.0}}))
        timings, label = load_timings(path)
        assert timings == {"total_seconds": 2.0} and label == "smoke"

    def test_bare_dict_labelled_by_filename(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"simulate": 3}))
        timings, label = load_timings(path)
        assert timings == {"simulate": 3.0} and label == "bare.json"

    @pytest.mark.parametrize("payload", [
        "[1, 2]",                       # not an object
        '{"simulate": "fast"}',         # non-numeric timing
        '{"simulate": true}',           # bool is not a timing
        '{"simulate": Infinity}',       # non-finite
        "{}",                           # empty
    ])
    def test_bad_payloads_rejected(self, tmp_path, payload):
        path = tmp_path / "bad.json"
        path.write_text(payload)
        with pytest.raises(ValueError):
            load_timings(path)


class TestRendering:
    def test_markdown_has_verdict_and_dashes_for_missing(self):
        report = compare_timings({"a": 1.0}, {"a": 2.0, "b": 1.0}, min_seconds=0.005)
        text = trend_markdown(report)
        assert "1 regression(s): a" in text
        assert "—" in text  # b has no baseline column

    def test_json_summarises_status(self):
        bad = trend_json(compare_timings({"a": 1.0}, {"a": 9.0}))
        good = trend_json(compare_timings({"a": 1.0}, {"a": 1.0}))
        assert bad["status"] == REGRESSION and bad["regressions"] == 1
        assert good["status"] == OK and good["regressions"] == 0


class TestTrendCli:
    def _write(self, path, timings):
        path.write_text(json.dumps(timings))
        return str(path)

    def test_no_regression_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"simulate": 1.0})
        cur = self._write(tmp_path / "cur.json", {"simulate": 1.1})
        assert main(["bench", "trend", "--baseline", base, "--current", cur]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"simulate": 1.0})
        cur = self._write(tmp_path / "cur.json", {"simulate": 5.0})
        assert main(["bench", "trend", "--baseline", base, "--current", cur]) == 1
        assert "regression" in capsys.readouterr().out

    def test_requires_exactly_one_current_source(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"simulate": 1.0})
        assert main(["bench", "trend", "--baseline", base]) == 2
        cur = self._write(tmp_path / "cur.json", {"simulate": 1.0})
        assert main(["bench", "trend", "--baseline", base,
                     "--current", cur, "--suite", "smoke"]) == 2

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        cur = self._write(tmp_path / "cur.json", {"simulate": 1.0})
        assert main(["bench", "trend", "--baseline", str(tmp_path / "none.json"),
                     "--current", cur]) == 2

    def test_writes_markdown_and_json_outputs(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", {"simulate": 1.0})
        cur = self._write(tmp_path / "cur.json", {"simulate": 1.1})
        md = tmp_path / "trend.md"
        js = tmp_path / "trend.json"
        assert main(["bench", "trend", "--baseline", base, "--current", cur,
                     "--markdown", str(md), "--json", str(js)]) == 0
        assert "Perf trend" in md.read_text()
        assert json.loads(js.read_text())["status"] == OK
