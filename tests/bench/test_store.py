"""Tests for the content-addressed result store."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import Scenario, run
from repro.bench.store import ResultStore, StoredResult, code_version, result_key


@pytest.fixture(scope="module")
def scenario_and_report():
    scenario = Scenario(workload="uniform", jobs=40, machine_size=32, load=0.6, seed=11)
    return scenario, run(scenario).report


class TestResultKey:
    def test_stable_for_identical_scenarios(self, scenario_and_report):
        scenario, _ = scenario_and_report
        clone = Scenario.from_json(scenario.to_json())
        assert result_key(scenario) == result_key(clone)

    def test_any_field_change_changes_the_key(self, scenario_and_report):
        scenario, _ = scenario_and_report
        base = result_key(scenario)
        for change in (
            {"seed": 12},
            {"load": 0.61},
            {"policy": "fcfs"},
            {"tau": 9.0},
            {"jobs": 41},
            {"machine_size": 64},
            {"honor_dependencies": True},
        ):
            assert result_key(scenario.with_(**change)) != base, change

    def test_cosmetic_name_is_not_key_material(self, scenario_and_report):
        # Suites label scenarios per case; identical simulations must share
        # cache entries across differently-labelled suites.
        scenario, _ = scenario_and_report
        assert result_key(scenario.with_(name="std-space/fcfs#1")) == result_key(
            scenario.with_(name="e03 load=0.85")
        )

    def test_family_key_groups_across_seeds_only(self, scenario_and_report):
        from repro.bench.store import family_key

        scenario, _ = scenario_and_report
        assert family_key(scenario.with_(seed=1)) == family_key(scenario.with_(seed=2))
        assert family_key(scenario.with_(jobs=99)) != family_key(scenario)
        # Outage-generation seeds are per-replication, so they do not split
        # the family either — but the MTBF does.
        base = {"outages": {"mtbf_days": 2.0, "horizon_days": 30.0, "seed": 1}}
        other_seed = {"outages": {"mtbf_days": 2.0, "horizon_days": 30.0, "seed": 2}}
        other_mtbf = {"outages": {"mtbf_days": 4.0, "horizon_days": 30.0, "seed": 1}}
        assert family_key(scenario, base) == family_key(scenario, other_seed)
        assert family_key(scenario, base) != family_key(scenario, other_mtbf)

    def test_extra_material_changes_the_key(self, scenario_and_report):
        scenario, _ = scenario_and_report
        assert result_key(scenario) != result_key(
            scenario, extra={"outages": {"mtbf_days": 2.0, "seed": 11}}
        )

    def test_code_version_is_part_of_the_key(self, scenario_and_report, monkeypatch):
        scenario, _ = scenario_and_report
        base = result_key(scenario)
        monkeypatch.setattr("repro.bench.store.STORE_VERSION", "v999")
        assert result_key(scenario) != base

    def test_code_version_names_package_and_store(self):
        import repro

        assert repro.__version__ in code_version()


class TestResultStore:
    def test_round_trip_is_lossless(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        key = result_key(scenario)
        store.put(
            StoredResult(
                key=key, scenario=scenario, report=report, extra={},
                suite="s", case="c", elapsed_seconds=0.5,
            )
        )
        loaded = store.get(key)
        # Full precision: the dataclasses compare equal field-for-field,
        # including the medians and tau that as_dict() drops.
        assert loaded.report == report
        assert loaded.scenario == scenario
        assert (loaded.suite, loaded.case) == ("s", "c")

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        key = result_key(scenario)
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None

    def test_contains_len_and_entries(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        key = result_key(scenario)
        assert key not in store and len(store) == 0
        store.put(StoredResult(key=key, scenario=scenario, report=report, extra={}))
        assert key in store and len(store) == 1
        assert [e.key for e in store.entries()] == [key]

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_STORE", str(tmp_path / "elsewhere"))
        assert ResultStore().root == tmp_path / "elsewhere"


class TestMetricsReportJson:
    def test_to_json_round_trip_is_lossless(self, scenario_and_report):
        _, report = scenario_and_report
        data = json.loads(json.dumps(report.to_json()))
        assert type(report).from_json(data) == report

    def test_to_json_keeps_the_fields_as_dict_drops(self, scenario_and_report):
        _, report = scenario_and_report
        data = report.to_json()
        display = report.as_dict()
        for field in ("median_wait", "median_response", "median_bounded_slowdown",
                      "total_area", "tau"):
            assert field in data
            assert field not in display

    def test_from_json_rejects_unknown_and_missing(self, scenario_and_report):
        _, report = scenario_and_report
        data = report.to_json()
        with pytest.raises(ValueError, match="unknown"):
            type(report).from_json({**data, "bogus": 1})
        incomplete = dict(data)
        incomplete.pop("tau")
        with pytest.raises(ValueError, match="missing"):
            type(report).from_json(incomplete)


class TestStoreIndex:
    def _put(self, store, scenario, report, seed):
        key = result_key(scenario.with_(seed=seed))
        store.put(
            StoredResult(
                key=key, scenario=scenario.with_(seed=seed), report=report,
                extra={}, suite="s", case="c",
            )
        )
        return key

    def test_entries_builds_the_index_lazily(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        keys = {self._put(store, scenario, report, seed) for seed in (1, 2, 3)}
        assert not store.index_path.exists()
        assert {e.key for e in store.entries()} == keys
        assert store.index_path.exists()

    def test_fresh_index_is_reused_not_rebuilt(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        self._put(store, scenario, report, 1)
        list(store.entries())
        stamp = store.index_path.stat().st_mtime_ns
        assert len(list(store.entries())) == 1
        assert store.index_path.stat().st_mtime_ns == stamp

    def test_new_entry_staleness_is_detected(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        self._put(store, scenario, report, 1)
        assert len(list(store.entries())) == 1
        key = self._put(store, scenario, report, 2)
        assert key in {e.key for e in store.entries()}

    def test_deleted_entry_staleness_is_detected(self, tmp_path, scenario_and_report):
        import os

        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        keep = self._put(store, scenario, report, 1)
        drop = self._put(store, scenario, report, 2)
        assert len(list(store.entries())) == 2
        os.unlink(store.path_for(drop))
        assert {e.key for e in store.entries()} == {keep}

    def test_corrupt_index_triggers_rescan(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        key = self._put(store, scenario, report, 1)
        list(store.entries())
        store.index_path.write_text("{broken", encoding="utf-8")
        assert [e.key for e in store.entries()] == [key]

    def test_index_content_matches_a_direct_scan(self, tmp_path, scenario_and_report):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        self._put(store, scenario, report, 7)
        indexed = list(store.entries())
        direct = [store.get(e.key) for e in indexed]
        assert indexed == direct

    def test_recorded_shard_mtimes_must_match_current(self, tmp_path, scenario_and_report):
        # The index snapshots shard mtimes before scanning; an entry that
        # lands mid-rebuild leaves the recorded map stale relative to the
        # current one, which must force a rescan (never a "fresh" index that
        # silently hides the entry).
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        key = self._put(store, scenario, report, 1)
        list(store.entries())
        index = json.loads(store.index_path.read_text())
        index["shards"] = {name: mtime - 1 for name, mtime in index["shards"].items()}
        store.index_path.write_text(json.dumps(index))
        assert store._load_fresh_index() is None
        assert [e.key for e in store.entries()] == [key]

    def test_rebuild_preserves_recorded_code_versions(self, tmp_path, scenario_and_report, monkeypatch):
        scenario, report = scenario_and_report
        store = ResultStore(tmp_path)
        key = self._put(store, scenario, report, 1)
        original = store.get(key).code
        store.rebuild_index()
        monkeypatch.setattr("repro.bench.store.STORE_VERSION", "v999")
        # Re-serializing a loaded entry must keep its original code version,
        # not launder it into the current one.
        entry = next(iter(StoredResult.from_record(r) for r in json.loads(
            store.index_path.read_text())["entries"]))
        assert entry.code == original
