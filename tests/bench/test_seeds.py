"""Tests for deterministic seed derivation."""

from __future__ import annotations

import pytest

from repro.bench.seeds import derive_seeds


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(3, 10) == derive_seeds(3, 10)

    def test_prefix_stable(self):
        # Growing the replication count extends the list, never reshuffles.
        assert derive_seeds(7, 10)[:4] == derive_seeds(7, 4)

    def test_distinct_within_and_across_bases(self):
        seeds = derive_seeds(0, 1000)
        assert len(set(seeds)) == 1000
        assert not set(seeds) & set(derive_seeds(1, 1000))

    def test_neighbouring_bases_do_not_overlap(self):
        # The seed+i anti-pattern this replaces: bases 3 and 4 would share
        # all but one of their replications.
        assert not set(derive_seeds(3, 8)) & set(derive_seeds(4, 8))

    def test_values_fit_every_rng(self):
        assert all(0 <= s < 2**31 for s in derive_seeds(123456789, 200))

    def test_empty_and_negative(self):
        assert derive_seeds(5, 0) == []
        with pytest.raises(ValueError):
            derive_seeds(5, -1)
