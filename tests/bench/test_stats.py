"""Tests for the pure-python replication statistics."""

from __future__ import annotations

import math

import pytest

from repro.bench.stats import (
    bootstrap_ci,
    mean_ci,
    paired_comparison,
    student_t_cdf,
    student_t_quantile,
)


class TestStudentT:
    # Published two-tailed 95% critical values (p = 0.975 one-sided).
    KNOWN_QUANTILES = {
        1: 12.7062,
        2: 4.30265,
        4: 2.77645,
        9: 2.26216,
        30: 2.04227,
        1000: 1.96234,
    }

    def test_known_quantiles(self):
        for df, expected in self.KNOWN_QUANTILES.items():
            assert student_t_quantile(0.975, df) == pytest.approx(expected, abs=1e-4)

    def test_symmetry_and_median(self):
        assert student_t_quantile(0.5, 7) == 0.0
        assert student_t_quantile(0.025, 7) == pytest.approx(
            -student_t_quantile(0.975, 7), abs=1e-10
        )

    def test_cdf_quantile_round_trip(self):
        for df in (1, 3, 12):
            for p in (0.6, 0.9, 0.99):
                assert student_t_cdf(student_t_quantile(p, df), df) == pytest.approx(p, abs=1e-9)

    def test_heavier_tails_than_normal(self):
        # t critical values decrease toward z = 1.96 as df grows.
        values = [student_t_quantile(0.975, df) for df in (2, 5, 20, 200)]
        assert values == sorted(values, reverse=True)
        assert values[-1] > 1.9599

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            student_t_quantile(0.0, 5)
        with pytest.raises(ValueError):
            student_t_quantile(0.5, 0)


class TestMeanCI:
    def test_textbook_interval(self):
        # mean 3, sample sd sqrt(2.5), t_{0.975,4} = 2.77645.
        ci = mean_ci([1, 2, 3, 4, 5])
        assert ci.mean == 3.0
        expected_half = 2.77645 * math.sqrt(2.5) / math.sqrt(5)
        assert ci.half_width == pytest.approx(expected_half, abs=1e-4)
        assert ci.lo == pytest.approx(3.0 - expected_half, abs=1e-4)

    def test_single_sample_collapses(self):
        ci = mean_ci([42.0])
        assert (ci.mean, ci.lo, ci.hi) == (42.0, 42.0, 42.0)

    def test_higher_confidence_widens(self):
        data = [1.0, 2.0, 4.0, 8.0]
        assert mean_ci(data, 0.99).half_width > mean_ci(data, 0.90).half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])


class TestBootstrap:
    def test_deterministic_given_seed(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        a = bootstrap_ci(data, seed=7)
        assert a == bootstrap_ci(data, seed=7)
        assert a.lo <= a.mean <= a.hi

    def test_custom_statistic(self):
        data = [1.0, 2.0, 3.0, 4.0, 100.0]

        def median(values):
            ordered = sorted(values)
            return ordered[len(ordered) // 2]

        ci = bootstrap_ci(data, statistic=median, seed=1)
        assert ci.mean == 3.0
        assert ci.hi <= 100.0


class TestPairedComparison:
    def test_clear_difference_is_significant(self):
        a = [5.1, 5.2, 4.9, 5.0, 5.1]
        b = [4.0, 4.1, 3.9, 4.05, 4.0]
        cmp = paired_comparison(a, b)
        assert cmp.significant
        assert cmp.direction == 1
        assert cmp.verdict == "A > B"
        assert cmp.mean_diff == pytest.approx(1.05, abs=1e-9)
        assert cmp.lo > 0

    def test_sign_flips_with_order(self):
        a = [1.0, 1.1, 0.9, 1.05]
        b = [2.0, 2.2, 1.9, 2.1]
        assert paired_comparison(a, b).direction == -1
        assert paired_comparison(b, a).direction == 1

    def test_noise_is_not_significant(self):
        a = [5.1, 4.8, 5.2, 4.9, 5.0]
        b = [5.0, 5.1, 4.9, 5.2, 4.85]
        cmp = paired_comparison(a, b)
        assert not cmp.significant
        assert cmp.direction == 0
        assert cmp.verdict == "no significant difference"

    def test_pairing_beats_unpaired_comparison(self):
        # Huge between-seed variance, small consistent shift: only the
        # paired test (common random numbers) can see it.
        base = [10.0, 200.0, 3000.0, 45.0, 800.0]
        shifts = [1.0, 1.2, 0.8, 1.1, 0.9]
        a = [v + s for v, s in zip(base, shifts)]
        cmp = paired_comparison(a, base)
        assert cmp.significant and cmp.direction == 1
        # The unpaired intervals overlap almost entirely.
        assert mean_ci(a).lo < mean_ci(base).hi

    def test_identical_samples(self):
        cmp = paired_comparison([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert not cmp.significant
        assert cmp.p_value == 1.0

    def test_constant_shift_with_zero_variance(self):
        cmp = paired_comparison([2.0, 3.0, 4.0], [1.0, 2.0, 3.0])
        assert cmp.significant
        assert cmp.direction == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([1.0, 2.0], [1.0])


class TestMetricCI:
    def test_bounded_metric_uses_the_bootstrap(self):
        from repro.bench.stats import BOUNDED_METRICS, metric_ci

        assert "utilization" in BOUNDED_METRICS
        # Near saturation the Student-t interval overshoots the [0, 1]
        # bound; the percentile bootstrap cannot, since every resampled
        # statistic is a mean of observed in-bound values.
        values = [0.999, 0.92, 0.998, 0.997]
        t_interval = mean_ci(values, 0.95)
        bounded = metric_ci("utilization", values, 0.95)
        assert t_interval.hi > 1.0
        assert bounded.hi <= 1.0
        assert bounded.lo >= 0.0
        assert bounded.mean == pytest.approx(t_interval.mean)

    def test_unbounded_metric_keeps_student_t(self):
        from repro.bench.stats import metric_ci

        values = [10.0, 12.0, 9.0, 14.0]
        assert metric_ci("mean_wait", values, 0.95) == mean_ci(values, 0.95)

    def test_single_replication_collapses_to_the_point(self):
        from repro.bench.stats import metric_ci

        ci = metric_ci("utilization", [0.7], 0.95)
        assert (ci.lo, ci.hi) == (0.7, 0.7)

    def test_metric_ci_is_deterministic(self):
        from repro.bench.stats import metric_ci

        values = [0.8, 0.9, 0.85]
        assert metric_ci("utilization", values) == metric_ci("utilization", values)
