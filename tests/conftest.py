"""Shared fixtures: small deterministic workloads and machines for fast tests."""

from __future__ import annotations

import pytest

from repro.core.swf import SWFHeader, SWFJob, Workload
from repro.workloads import Lublin99Model


def make_job(
    number: int,
    submit: int = 0,
    wait: int = 0,
    runtime: int = 100,
    processors: int = 4,
    **overrides,
) -> SWFJob:
    """Build a small, fully-specified SWF job for hand-written scenarios."""
    fields = dict(
        job_number=number,
        submit_time=submit,
        wait_time=wait,
        run_time=runtime,
        allocated_processors=processors,
        average_cpu_time=runtime,
        used_memory=1024,
        requested_processors=processors,
        requested_time=runtime * 2,
        requested_memory=2048,
        status=1,
        user_id=1,
        group_id=1,
        executable_id=1,
        queue_number=1,
        partition_number=1,
    )
    fields.update(overrides)
    return SWFJob(**fields)


def make_workload(jobs, machine_size: int = 32, name: str = "test") -> Workload:
    """Wrap hand-written jobs in a workload with a matching header."""
    header = SWFHeader.standard(
        computer="test machine", installation="unit tests", max_nodes=machine_size
    )
    return Workload(list(jobs), header, name=name)


@pytest.fixture
def tiny_workload() -> Workload:
    """Four small jobs on a 32-node machine; first submit at time zero."""
    jobs = [
        make_job(1, submit=0, runtime=100, processors=8),
        make_job(2, submit=10, runtime=50, processors=16),
        make_job(3, submit=20, runtime=200, processors=32),
        make_job(4, submit=30, runtime=25, processors=4),
    ]
    return make_workload(jobs)


@pytest.fixture(scope="session")
def lublin_workload() -> Workload:
    """A moderately sized model workload shared by integration-style tests."""
    return Lublin99Model(machine_size=64).generate_with_load(400, 0.7, seed=1234)


@pytest.fixture
def job_factory():
    """Expose :func:`make_job` to tests as a fixture."""
    return make_job


@pytest.fixture
def workload_factory():
    """Expose :func:`make_workload` to tests as a fixture."""
    return make_workload
