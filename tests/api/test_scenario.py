"""Tests for the Scenario dataclass and its JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario


class TestScenario:
    def test_defaults(self):
        scenario = Scenario(workload="lublin99")
        assert scenario.policy == "easy"
        assert scenario.machine_size is None
        assert scenario.honor_dependencies is False
        assert scenario.tau == 10.0

    def test_frozen(self):
        scenario = Scenario(workload="lublin99")
        with pytest.raises(Exception):
            scenario.policy = "fcfs"

    def test_with_replaces_fields(self):
        scenario = Scenario(workload="lublin99", machine_size=64)
        changed = scenario.with_(policy="gang:slots=3", load=0.9)
        assert changed.policy == "gang:slots=3"
        assert changed.load == 0.9
        assert changed.machine_size == 64
        assert scenario.policy == "easy"  # original untouched

    def test_label(self):
        assert Scenario(workload="w", policy="p").label == "w/p"
        assert Scenario(workload="w", name="hello").label == "hello"


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        scenario = Scenario(
            workload="lublin99:jobs=5000,seed=1",
            policy="sjf:strict=true",
            machine_size=256,
            jobs=5000,
            load=0.85,
            seed=1,
            outages="logs/outages.log",
            honor_dependencies=True,
            restart_failed_jobs=False,
            max_restarts=3,
            tau=60.0,
            name="stress",
        )
        blob = json.dumps(scenario.to_dict())
        assert Scenario.from_dict(json.loads(blob)) == scenario
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_round_trip_with_defaults(self):
        scenario = Scenario(workload="uniform")
        assert Scenario.from_dict(json.loads(json.dumps(scenario.to_dict()))) == scenario

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            Scenario.from_dict({"workload": "lublin99", "polcy": "easy"})

    def test_missing_workload_raises(self):
        with pytest.raises(ValueError, match="workload"):
            Scenario.from_dict({"policy": "easy"})
