"""Tests for the unified scenario runner: dispatch, conditions, fan-out."""

from __future__ import annotations

import pytest

from repro.api import Scenario, resolve_workload, run, run_many
from repro.core.outage import (
    OutageLog,
    OutageRecord,
    OutageType,
    write_outage_log,
)
from repro.core.swf import write_swf
from repro.evaluation import simulate
from repro.schedulers import EasyBackfillScheduler
from tests.conftest import make_job, make_workload


def _job_triples(result):
    return [(j.job_id, j.start_time, j.end_time) for j in result.jobs]


class TestWorkloadResolution:
    def test_model_spec_with_jobs_and_seed(self):
        workload = resolve_workload(Scenario(workload="lublin99:jobs=40,seed=7"))
        assert len(workload) == 40
        # The spec is deterministic: the same string materializes identically.
        again = resolve_workload(Scenario(workload="lublin99:jobs=40,seed=7"))
        assert [j.submit_time for j in workload.summary_jobs()] == [
            j.submit_time for j in again.summary_jobs()
        ]

    def test_scenario_jobs_and_seed_are_the_defaults(self):
        workload = resolve_workload(Scenario(workload="uniform", jobs=25, seed=3))
        assert len(workload) == 25

    def test_archive_names_resolve(self):
        workload = resolve_workload(Scenario(workload="ctc-sp2", jobs=30, seed=1))
        assert len(workload) == 30

    def test_swf_path_resolves(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(make_workload([make_job(1)]), path)
        assert len(resolve_workload(Scenario(workload=str(path)))) == 1
        assert len(resolve_workload(Scenario(workload=f"swf:{path}"))) == 1

    def test_load_scaling_applies(self):
        base = resolve_workload(Scenario(workload="lublin99:jobs=200,seed=5", machine_size=64))
        scaled = resolve_workload(
            Scenario(workload="lublin99:jobs=200,seed=5", machine_size=64, load=0.8)
        )
        assert scaled.offered_load(64) == pytest.approx(0.8, rel=0.05)
        assert base.offered_load(64) != pytest.approx(0.8, rel=0.05)

    def test_unknown_workload_suggests(self):
        from repro.api.registry import UnknownNameError

        with pytest.raises(UnknownNameError, match="did you mean"):
            resolve_workload(Scenario(workload="lublin9"))


class TestRunDispatch:
    def test_space_mode_matches_direct_simulate(self):
        workload = make_workload(
            [make_job(i, submit=i * 10, runtime=100, processors=4) for i in range(1, 8)]
        )
        direct = simulate(workload, EasyBackfillScheduler(), machine_size=16)
        via_api = run(Scenario(workload="(direct)", policy="easy", machine_size=16),
                      workload=workload)
        assert _job_triples(via_api.result) == _job_triples(direct)
        assert via_api.report.mean_wait == pytest.approx(
            sum(j.wait_time for j in direct.jobs) / len(direct.jobs)
        )

    def test_gang_mode_dispatches_to_gang_simulator(self):
        result = run(Scenario(workload="uniform:jobs=20,seed=2", policy="gang:slots=3",
                              machine_size=32))
        assert result.result.scheduler_name == "gang-3slots"
        assert result.result.metadata["max_slots"] == 3

    def test_grid_mode_dispatches_to_grid_simulator(self):
        result = run(
            Scenario(
                workload="lublin99:jobs=30",
                policy="grid:meta=least-loaded,sites=2,meta_jobs=5",
                machine_size=64,
                seed=4,
            )
        )
        assert result.grid is not None
        assert len(result.grid.site_results) == 2
        assert result.result.metadata["sites"] == 2
        # Local jobs of both sites are merged into the uniform result shape.
        assert len(result.result.jobs) == sum(
            len(sr.jobs) for sr in result.grid.site_results.values()
        )

    def test_priority_policy_spec_reaches_simulation(self):
        result = run(Scenario(workload="lublin99:jobs=50,seed=6", policy="sjf:strict=true",
                              machine_size=64))
        assert result.result.scheduler_name == "sjf"

    def test_tau_reaches_the_report(self):
        result = run(Scenario(workload="uniform:jobs=20,seed=2", machine_size=32, tau=60.0))
        assert result.report.tau == 60.0


class TestConditions:
    def _outage_log(self):
        return OutageLog(
            [
                OutageRecord(
                    announced_time=50,
                    start_time=50,
                    end_time=60,
                    outage_type=OutageType.MAINTENANCE,
                    nodes_affected=16,
                )
            ]
        )

    def test_outage_log_path_is_loaded(self, tmp_path):
        trace = tmp_path / "trace.swf"
        write_swf(make_workload([make_job(1, submit=0, runtime=100, processors=16)]), trace)
        log_path = tmp_path / "outages.log"
        write_outage_log(self._outage_log(), log_path)
        result = run(Scenario(workload=str(trace), policy="fcfs", machine_size=16,
                              outages=str(log_path)))
        assert result.result.outage_kills == 1

    def test_max_restarts_is_honored(self, tmp_path):
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=16)])
        scenario = Scenario(workload="(direct)", policy="fcfs", machine_size=16)
        unlimited = run(scenario, workload=workload, outages=self._outage_log())
        assert unlimited.result.by_job_id()[1].restarts == 1
        capped = run(scenario.with_(max_restarts=0), workload=workload,
                     outages=self._outage_log())
        assert capped.result.by_job_id()[1].killed

    def test_gang_rejects_space_only_conditions(self):
        scenario = Scenario(workload="uniform:jobs=10,seed=1", policy="gang:slots=2",
                            machine_size=32, outages="some/log")
        with pytest.raises(ValueError, match="does not support.*outages"):
            run(scenario)
        with pytest.raises(ValueError, match="honor_dependencies"):
            run(scenario.with_(outages=None, honor_dependencies=True))

    def test_grid_rejects_space_only_conditions(self):
        scenario = Scenario(workload="uniform:jobs=10,seed=1", policy="grid:sites=2",
                            machine_size=32, honor_dependencies=True)
        with pytest.raises(ValueError, match="'grid' simulator"):
            run(scenario)

    def test_honor_dependencies_is_forwarded(self):
        from repro.core.swf import MISSING

        jobs = [
            make_job(1, submit=0, runtime=100, processors=4),
            make_job(2, submit=10, runtime=50, processors=4, preceding_job=1, think_time=20),
        ]
        workload = make_workload(jobs)
        scenario = Scenario(workload="(direct)", policy="fcfs", machine_size=16)
        open_replay = run(scenario, workload=workload)
        closed_replay = run(scenario.with_(honor_dependencies=True), workload=workload)
        assert open_replay.result.by_job_id()[2].submit_time == 10
        assert closed_replay.result.by_job_id()[2].submit_time == 120


class TestRunMany:
    def test_parallel_matches_serial_job_for_job(self):
        scenarios = [
            Scenario(workload="lublin99:jobs=60,seed=8", policy=policy, machine_size=64)
            for policy in ("fcfs", "easy", "sjf", "gang:slots=3")
        ]
        serial = run_many(scenarios)
        parallel = run_many(scenarios, workers=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.result.scheduler_name == b.result.scheduler_name
            assert _job_triples(a.result) == _job_triples(b.result)

    def test_telemetry_counters_identical_serial_vs_parallel(self):
        # Run counters derive only from simulated facts (events, scheduling
        # decisions), never wall-clock, so serial and parallel execution of
        # the same scenario must produce byte-identical reports.
        scenarios = [
            Scenario(workload="lublin99:jobs=80,seed=5", policy=policy, machine_size=64)
            for policy in ("easy", "conservative", "fcfs")
        ]
        serial = run_many(scenarios)
        parallel = run_many(scenarios, workers=3)
        for a, b in zip(serial, parallel):
            assert a.report.counters == b.report.counters
            assert a.report.to_json() == b.report.to_json()
        easy_counters = serial[0].report.counters
        for key in (
            "events_processed", "jobs_started", "jobs_backfilled",
            "shadow_scans", "sched_passes", "max_queue_depth",
            "peak_event_queue",
        ):
            assert key in easy_counters, key
        assert "profile_builds" in serial[1].report.counters

    def test_scenario_result_records_phase_timings(self):
        result = run(
            Scenario(workload="uniform:jobs=20,seed=2", policy="fcfs", machine_size=32)
        )
        assert set(result.timings) == {
            "materialize_seconds", "simulate_seconds", "metrics_seconds",
        }
        assert all(v >= 0 for v in result.timings.values())

    def test_order_is_preserved(self):
        scenarios = [
            Scenario(workload="uniform:jobs=10,seed=1", policy=policy, machine_size=32)
            for policy in ("fcfs", "easy", "conservative")
        ]
        results = run_many(scenarios, workers=3)
        assert [r.result.scheduler_name for r in results] == [
            "fcfs", "easy-backfill", "conservative-backfill",
        ]

    def test_broadcast_workload_override(self):
        workload = make_workload(
            [make_job(i, submit=i, runtime=50, processors=4) for i in range(1, 6)]
        )
        scenarios = [
            Scenario(workload="(direct)", policy=policy, machine_size=16)
            for policy in ("fcfs", "easy")
        ]
        results = run_many(scenarios, workers=2, workloads=workload)
        assert all(len(r.result.jobs) == 5 for r in results)

    def test_mismatched_override_list_raises(self):
        scenarios = [Scenario(workload="uniform:jobs=5,seed=1", machine_size=32)]
        with pytest.raises(ValueError, match="length"):
            run_many(scenarios, workloads=[None, None])

    def test_empty_input(self):
        assert run_many([]) == []

    def test_worker_error_propagates_instead_of_hanging(self):
        # UnknownNameError must pickle across the process boundary; a
        # worker exception that fails to unpickle hangs Pool.map forever.
        scenarios = [
            Scenario(workload="uniform:jobs=5,seed=1", policy="easyy", machine_size=32)
        ] * 2
        from repro.api.registry import UnknownNameError

        with pytest.raises(UnknownNameError, match="did you mean"):
            run_many(scenarios, workers=2)

    def test_unknown_name_error_pickles(self):
        import pickle

        from repro.api.registry import UnknownNameError

        error = UnknownNameError("scheduler", "easyy", ["easy", "fcfs"])
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, UnknownNameError)
        assert "did you mean 'easy'" in str(clone)


class TestOnResultCallback:
    def _scenarios(self):
        return [
            Scenario(workload="uniform:jobs=10,seed=1", policy=policy, machine_size=32)
            for policy in ("fcfs", "easy", "conservative")
        ]

    def test_serial_calls_in_order(self):
        seen = []
        results = run_many(self._scenarios(),
                           on_result=lambda i, r: seen.append(i))
        assert seen == [0, 1, 2] and len(results) == 3

    def test_parallel_calls_once_per_task_with_matching_results(self):
        seen = {}
        results = run_many(self._scenarios(), workers=3,
                           on_result=lambda i, r: seen.setdefault(i, r))
        assert sorted(seen) == [0, 1, 2]
        # The callback sees the same object that lands in the result list.
        for index, result in seen.items():
            assert results[index] is result

    def test_callback_runs_in_parent_process(self):
        import os

        pids = []
        run_many(self._scenarios(), workers=2,
                 on_result=lambda i, r: pids.append(os.getpid()))
        assert set(pids) == {os.getpid()}


class TestTracePrewarm:
    SPEC = "trace:ctc-sp2,jobs=40,seed=9,load=0.8"

    def _cache(self, tmp_path, monkeypatch):
        from repro.traces import TraceCache

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "trace-cache"))
        return TraceCache()

    def test_prewarm_materializes_each_trace_once(self, tmp_path, monkeypatch):
        from repro.api.runner import _prewarm_traces
        from repro.traces import trace_from_spec

        cache = self._cache(tmp_path, monkeypatch)
        scenarios = [
            Scenario(workload=self.SPEC, policy=policy, machine_size=64)
            for policy in ("fcfs", "easy")
        ]
        tasks = [(s, None, None) for s in scenarios]
        _prewarm_traces(tasks)
        assert trace_from_spec(self.SPEC).digest in cache

    def test_prewarm_skips_overrides_and_plain_specs(self, tmp_path, monkeypatch):
        from repro.api.runner import _prewarm_traces

        cache = self._cache(tmp_path, monkeypatch)
        workload = make_workload([make_job(1)])
        tasks = [
            # explicit workload override: nothing to materialize
            (Scenario(workload=self.SPEC, machine_size=64), workload, None),
            # model spec: not trace-backed
            (Scenario(workload="uniform:jobs=5,seed=1", machine_size=32), None, None),
        ]
        _prewarm_traces(tasks)
        assert not list(cache.root.glob("*/*.swf"))

    def test_parallel_trace_run_warms_cache_and_matches_serial(
        self, tmp_path, monkeypatch
    ):
        from repro.traces import trace_from_spec

        cache = self._cache(tmp_path, monkeypatch)
        scenarios = [
            Scenario(workload=self.SPEC, policy=policy, machine_size=64)
            for policy in ("fcfs", "easy")
        ]
        serial = run_many(scenarios)
        assert trace_from_spec(self.SPEC).digest in cache
        parallel = run_many(scenarios, workers=2)
        for a, b in zip(serial, parallel):
            assert _job_triples(a.result) == _job_triples(b.result)
