"""Tests for the registries and spec-string parsing."""

from __future__ import annotations

import pytest

from repro.api.registry import (
    Registry,
    RegistryError,
    SpecError,
    UnknownNameError,
    format_spec,
    make_model,
    make_scheduler,
    metric_registry,
    model_names,
    parse_spec,
    scheduler_names,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("easy") == ("easy", {})

    def test_kwargs_are_coerced(self):
        name, kwargs = parse_spec("gang:slots=3,overhead=0.1,label=hi,strict=true,x=none")
        assert name == "gang"
        assert kwargs == {"slots": 3, "overhead": 0.1, "label": "hi", "strict": True, "x": None}

    def test_dashes_in_keys_normalize(self):
        assert parse_spec("m:machine-size=64") == ("m", {"machine_size": 64})

    def test_malformed_pairs_raise(self):
        with pytest.raises(SpecError):
            parse_spec("easy:reservations")
        with pytest.raises(SpecError):
            parse_spec("")
        with pytest.raises(SpecError):
            parse_spec(":x=1")

    def test_format_round_trips(self):
        spec = format_spec("gang", {"slots": 3, "overhead": 0.1})
        assert parse_spec(spec) == ("gang", {"slots": 3, "overhead": 0.1})


class TestRegistry:
    def test_every_scheduler_is_reachable_by_name(self):
        names = set(scheduler_names())
        # The full policy roster of the codebase, including the gang and grid
        # simulator families and the priority policies.
        assert {
            "fcfs", "first-fit", "sjf", "ljf", "narrowest-first", "widest-first",
            "smallest-area-first", "wfp", "easy", "conservative", "moldable",
            "gang", "grid",
        } <= names

    def test_every_model_is_reachable_by_name(self):
        assert set(model_names()) >= {
            "feitelson96", "jann97", "lublin99", "downey97", "uniform", "sessions",
        }

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(UnknownNameError, match="did you mean 'easy'"):
            make_scheduler("easyy")
        with pytest.raises(UnknownNameError, match="lublin99"):
            make_model("lublin9")

    def test_unknown_name_is_a_keyerror(self):
        with pytest.raises(KeyError):
            make_scheduler("no-such-policy")

    def test_spec_kwargs_reach_the_constructor(self):
        sjf = make_scheduler("sjf:strict=true")
        assert sjf.strict is True
        gang = make_scheduler("gang:slots=3,overhead=0.1")
        assert (gang.slots, gang.overhead) == (3, 0.1)

    def test_defaults_yield_to_spec_kwargs(self):
        model = make_model("lublin99:machine_size=64", machine_size=256)
        assert model.machine_size == 64

    def test_bad_constructor_kwarg_is_a_spec_error(self):
        with pytest.raises(SpecError, match="fcfs"):
            make_scheduler("fcfs:reservations=4")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a")(int)
        with pytest.raises(RegistryError):
            registry.register("a")(float)
        # Re-registering the same factory (module reloads) is tolerated.
        registry.register("a")(int)

    def test_aliases_resolve_to_the_same_factory(self):
        from repro.api.registry import scheduler_registry

        assert scheduler_registry.get("easy") is scheduler_registry.get("easy-backfill")


class TestMetricRegistry:
    def test_standard_metrics_registered(self):
        names = set(metric_registry.names())
        assert {"mean_wait", "mean_bounded_slowdown", "utilization", "makespan"} <= names

    def test_extractor_reads_a_report(self):
        from repro.api import Scenario, run
        from repro.api.registry import get_metric

        result = run(Scenario(workload="uniform:jobs=30,seed=1", machine_size=32))
        assert get_metric("mean_wait")(result.report) == result.report.mean_wait
