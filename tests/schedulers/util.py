"""Helpers for constructing scheduler states in policy unit tests."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.schedulers.base import JobRequest, RunningJobInfo, SchedulerState
from tests.conftest import make_job


def make_request(
    job_id: int,
    processors: int,
    runtime: int = 100,
    estimate: Optional[int] = None,
    submit: int = 0,
) -> JobRequest:
    """A JobRequest with explicit processors/runtime/estimate."""
    estimate = runtime if estimate is None else estimate
    job = make_job(
        job_id,
        submit=submit,
        runtime=runtime,
        processors=processors,
        requested_time=estimate,
    )
    return JobRequest(
        job=job, processors=processors, runtime=runtime, estimate=estimate, submit_time=submit
    )


def make_state(
    total: int,
    queue: Sequence[JobRequest] = (),
    running: Sequence[Tuple[JobRequest, float, float]] = (),
    now: float = 0.0,
    min_capacity=None,
) -> SchedulerState:
    """Scheduler state with free processors derived from the running jobs."""
    running_infos = [
        RunningJobInfo(request=req, start_time=start, expected_end=end)
        for req, start, end in running
    ]
    used = sum(info.processors for info in running_infos)
    return SchedulerState(
        now=now,
        total_processors=total,
        free_processors=total - used,
        queue=list(queue),
        running=running_infos,
        min_capacity=min_capacity,
    )
