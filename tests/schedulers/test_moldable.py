"""Unit tests for the moldable (adaptive-allocation) scheduler."""

from __future__ import annotations

import pytest

from repro.evaluation import simulate
from repro.schedulers import EasyBackfillScheduler
from repro.schedulers.moldable import MoldableScheduler
from repro.workloads import Downey97Model
from repro.workloads.speedup import DowneySpeedup, MoldableJob
from tests.schedulers.util import make_request, make_state


def moldable(job_id: int, work: float = 1000.0, A: float = 16.0, sigma: float = 0.5, maximum: int = 64):
    return MoldableJob(
        job_id=job_id,
        sequential_work=work,
        speedup_model=DowneySpeedup(A=A, sigma=sigma),
        max_processors=maximum,
    )


class TestSelection:
    def test_resizes_request_to_free_processors(self):
        request = make_request(1, processors=32, runtime=1000, estimate=1000)
        state = make_state(64, queue=[request], running=[(make_request(9, 56), 0.0, 500.0)])
        scheduler = MoldableScheduler({1: moldable(1)})
        started = scheduler.select_jobs(state)
        assert len(started) == 1
        assert started[0].processors <= 8  # only 8 free
        assert started[0].runtime > 0

    def test_blocks_when_nothing_is_free(self):
        request = make_request(1, processors=8)
        state = make_state(16, queue=[request], running=[(make_request(9, 16), 0.0, 100.0)])
        scheduler = MoldableScheduler({1: moldable(1)})
        assert scheduler.select_jobs(state) == []

    def test_efficiency_threshold_limits_allocation(self):
        # With sigma high the speedup flattens quickly; a strict threshold
        # should keep the allocation small even when the machine is empty.
        flat = moldable(1, A=4.0, sigma=2.0, maximum=64)
        request = make_request(1, processors=64, runtime=1000, estimate=1000)
        state = make_state(64, queue=[request])
        strict = MoldableScheduler({1: flat}, efficiency_threshold=0.9)
        relaxed = MoldableScheduler({1: flat}, efficiency_threshold=0.1)
        assert strict.select_jobs(state)[0].processors <= relaxed.select_jobs(state)[0].processors

    def test_larger_allocation_never_increases_runtime(self):
        job = moldable(1, A=32.0, sigma=0.3)
        runtimes = [job.runtime_on(n) for n in (1, 2, 4, 8, 16, 32)]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_jobs_without_description_treated_as_rigid(self):
        request = make_request(5, processors=8, runtime=100)
        state = make_state(16, queue=[request])
        scheduler = MoldableScheduler({})
        started = scheduler.select_jobs(state)
        assert started[0].processors == 8

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MoldableScheduler({}, efficiency_threshold=0.0)
        with pytest.raises(ValueError):
            MoldableScheduler({}, estimate_factor=0.5)


class TestEndToEnd:
    def test_adaptive_scheduling_completes_all_jobs(self):
        model = Downey97Model(machine_size=64)
        workload, descriptions = model.generate_moldable(150, seed=3)
        scheduler = MoldableScheduler(descriptions)
        result = simulate(workload, scheduler, machine_size=64)
        assert len(result.jobs) == len(workload.summary_jobs())

    def test_adaptive_helps_under_heavy_load(self):
        from repro.metrics import compute_metrics

        model = Downey97Model(machine_size=64)
        workload, descriptions = model.generate_moldable(200, seed=4)
        heavy = workload.scale_load(1.3 / workload.offered_load(64))
        rigid = compute_metrics(simulate(heavy, EasyBackfillScheduler(), machine_size=64))
        adaptive = compute_metrics(
            simulate(heavy, MoldableScheduler(descriptions), machine_size=64)
        )
        # Shrinking allocations under saturation should not make response worse
        # by more than a small factor, and typically improves it.
        assert adaptive.mean_response <= rigid.mean_response * 1.5
