"""Unit tests for FCFS, first-fit, and the priority-ordered policies."""

from __future__ import annotations

import pytest

from repro.schedulers import (
    FCFSScheduler,
    FirstFitScheduler,
    LongestJobFirstScheduler,
    NarrowestFirstScheduler,
    ShortestJobFirstScheduler,
    SmallestAreaFirstScheduler,
    WFPScheduler,
    WidestFirstScheduler,
)
from tests.schedulers.util import make_request, make_state


class TestFCFS:
    def test_starts_jobs_in_order_while_they_fit(self):
        queue = [make_request(1, 8), make_request(2, 8), make_request(3, 8)]
        state = make_state(20, queue=queue)
        started = FCFSScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [1, 2]

    def test_blocked_head_stops_everything(self):
        queue = [make_request(1, 32), make_request(2, 1)]
        state = make_state(16, queue=queue)
        assert FCFSScheduler().select_jobs(state) == []

    def test_empty_queue(self):
        assert FCFSScheduler().select_jobs(make_state(16)) == []

    def test_respects_running_jobs(self):
        running = [(make_request(99, 12), 0.0, 100.0)]
        queue = [make_request(1, 8)]
        state = make_state(16, queue=queue, running=running)
        assert FCFSScheduler().select_jobs(state) == []

    def test_outage_aware_fcfs_drains_before_capacity_drop(self):
        # 16 free now, but announced capacity drops to 8 within the job's estimate.
        queue = [make_request(1, processors=12, runtime=1000, estimate=1000)]
        state = make_state(
            16, queue=queue, min_capacity=lambda start, end: 8 if end > 500 else 16
        )
        assert FCFSScheduler(outage_aware=True).select_jobs(state) == []
        assert len(FCFSScheduler(outage_aware=False).select_jobs(state)) == 1


class TestFirstFit:
    def test_skips_blocked_head(self):
        queue = [make_request(1, 32), make_request(2, 4)]
        state = make_state(16, queue=queue)
        started = FirstFitScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [2]

    def test_packs_in_arrival_order(self):
        queue = [make_request(1, 10), make_request(2, 10), make_request(3, 6)]
        state = make_state(16, queue=queue)
        started = FirstFitScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [1, 3]


class TestPriorityPolicies:
    def test_sjf_prefers_short_estimates(self):
        queue = [make_request(1, 8, estimate=1000), make_request(2, 8, estimate=10)]
        state = make_state(8, queue=queue)
        started = ShortestJobFirstScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [2]

    def test_ljf_prefers_long_estimates(self):
        queue = [make_request(1, 8, estimate=1000), make_request(2, 8, estimate=10)]
        state = make_state(8, queue=queue)
        started = LongestJobFirstScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [1]

    def test_narrowest_first(self):
        queue = [make_request(1, 16), make_request(2, 2)]
        state = make_state(4, queue=queue)
        assert [r.job_id for r in NarrowestFirstScheduler().select_jobs(state)] == [2]

    def test_widest_first(self):
        queue = [make_request(1, 2), make_request(2, 16)]
        state = make_state(16, queue=queue)
        started = WidestFirstScheduler().select_jobs(state)
        assert started[0].job_id == 2

    def test_smallest_area_first(self):
        queue = [make_request(1, 8, estimate=1000), make_request(2, 4, estimate=10)]
        state = make_state(8, queue=queue)
        assert SmallestAreaFirstScheduler().select_jobs(state)[0].job_id == 2

    def test_strict_priority_blocks_behind_head(self):
        queue = [make_request(1, 32, estimate=5), make_request(2, 4, estimate=10)]
        state = make_state(16, queue=queue)
        strict = ShortestJobFirstScheduler(strict=True)
        greedy = ShortestJobFirstScheduler(strict=False)
        assert strict.select_jobs(state) == []
        assert [r.job_id for r in greedy.select_jobs(state)] == [2]

    def test_ties_broken_by_arrival_order(self):
        queue = [make_request(2, 4, estimate=100, submit=10), make_request(1, 4, estimate=100, submit=0)]
        state = make_state(4, queue=queue)
        assert ShortestJobFirstScheduler().select_jobs(state)[0].job_id == 1

    def test_wfp_prioritizes_long_waiting_small_jobs(self):
        waited_long = make_request(1, 2, estimate=100, submit=0)
        just_arrived = make_request(2, 2, estimate=100, submit=990)
        state = make_state(2, queue=[just_arrived, waited_long], now=1000.0)
        started = WFPScheduler().select_jobs(state)
        assert started[0].job_id == 1

    def test_selected_jobs_always_fit(self):
        queue = [make_request(i, 5, estimate=10 * i) for i in range(1, 10)]
        state = make_state(12, queue=queue)
        for policy in (
            FCFSScheduler(),
            FirstFitScheduler(),
            ShortestJobFirstScheduler(),
            WidestFirstScheduler(),
            WFPScheduler(),
        ):
            started = policy.select_jobs(state)
            assert sum(r.processors for r in started) <= 12
