"""Equivalence tests for the slot-set free-space core.

The slot-set :class:`~repro.schedulers.freespace.FreeSpace` replaced the
breakpoint-list ``AvailabilityProfile`` as the data structure behind
conservative backfilling.  The refactor's contract is *bit-for-bit schedule
equivalence*: every query the schedulers make must return exactly what the
old implementation returned.  These tests enforce that contract three ways:

1. a verbatim copy of the old profile (``ReferenceProfile``) is kept here
   as an oracle, and randomized operation sequences must agree query by
   query (property test);
2. the incremental :class:`FreeSpaceTracker` must always equal a cold
   ``FreeSpace.from_running`` rebuild, structurally, across simulated
   scheduling-pass sequences (jobs starting, finishing early, overrunning);
3. full simulations through the old conservative scheduler (also copied
   here verbatim) and the new one must produce identical per-job start/end
   sequences, identical ``jobs_backfilled`` counts, and identical store
   result keys on the smoke- and std-space-style scenarios.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Scenario, run
from repro.bench.store import result_key
from repro.obs.telemetry import count
from repro.schedulers.backfill import ConservativeBackfillScheduler
from repro.schedulers.base import (
    AvailabilityProfile,
    JobRequest,
    RunningJobInfo,
    Scheduler,
    SchedulerState,
)
from repro.schedulers.freespace import FreeSpace, FreeSpaceTracker
from tests.schedulers.util import make_request, make_state


# ----------------------------------------------------------------------
# the oracle: the pre-slot-set implementation, verbatim
# ----------------------------------------------------------------------
class ReferenceProfile:
    """The old breakpoint-list AvailabilityProfile, kept as a test oracle."""

    def __init__(self, total_processors: int, now: float) -> None:
        if total_processors < 1:
            raise ValueError("total_processors must be >= 1")
        self.total = total_processors
        self.now = float(now)
        self._times: List[float] = [float(now)]
        self._free: List[int] = [total_processors]

    @classmethod
    def from_running(
        cls,
        total_processors: int,
        now: float,
        running: Sequence[RunningJobInfo],
    ) -> "ReferenceProfile":
        profile = cls(total_processors, now)
        for info in running:
            end = max(info.expected_end, now)
            profile.remove(now, end, info.processors)
        return profile

    def _ensure_breakpoint(self, time: float) -> int:
        time = max(float(time), self.now)
        lo, hi = 0, len(self._times)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._times[mid] < time:
                lo = mid + 1
            else:
                hi = mid
        index = lo
        if index < len(self._times) and self._times[index] == time:
            return index
        previous_free = self._free[index - 1] if index > 0 else self.total
        self._times.insert(index, time)
        self._free.insert(index, previous_free)
        return index

    def _index_at(self, time: float) -> int:
        index = 0
        for i, t in enumerate(self._times):
            if t <= time:
                index = i
            else:
                break
        return index

    def free_at(self, time: float) -> int:
        return self._free[self._index_at(max(time, self.now))]

    def min_free(self, start: float, end: float) -> int:
        start = max(start, self.now)
        if end <= start:
            return self.free_at(start)
        minimum = self.free_at(start)
        for t, f in zip(self._times, self._free):
            if start < t < end:
                minimum = min(minimum, f)
        return minimum

    def remove(self, start: float, end: float, processors: int) -> None:
        if processors < 0:
            raise ValueError("processors must be non-negative")
        if end <= start or processors == 0:
            return
        start = max(start, self.now)
        i0 = self._ensure_breakpoint(start)
        i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            self._free[i] -= processors

    def add_capacity_limit(
        self, capacity_fn: Callable[[float, float], int], horizon: float
    ) -> None:
        for i, t in enumerate(self._times):
            if t >= horizon:
                break
            next_t = self._times[i + 1] if i + 1 < len(self._times) else horizon
            cap = capacity_fn(t, min(next_t, horizon))
            busy = self.total - self._free[i]
            self._free[i] = min(self._free[i], max(0, cap - busy))

    def earliest_start(
        self, processors: int, duration: float, not_before: Optional[float] = None
    ) -> float:
        if processors > self.total:
            raise ValueError(
                f"a request for {processors} processors can never fit a "
                f"{self.total}-processor machine"
            )
        not_before = self.now if not_before is None else max(not_before, self.now)
        candidates = [t for t in self._times if t >= not_before]
        if not_before not in candidates:
            candidates.insert(0, not_before)
        for anchor in candidates:
            if self.min_free(anchor, anchor + duration) >= processors:
                return anchor
        return max(self._times[-1], not_before)


class ReferenceConservative(Scheduler):
    """The old conservative scheduler: full profile rebuild every pass."""

    name = "reference-conservative"

    def __init__(self, outage_aware: bool = False, horizon: float = 365 * 24 * 3600.0):
        self.outage_aware = outage_aware
        self.horizon = horizon

    def select_jobs(self, state: SchedulerState) -> List[JobRequest]:
        profile = ReferenceProfile.from_running(
            state.total_processors, state.now, state.running
        )
        if self.outage_aware:
            profile.add_capacity_limit(state.min_capacity, state.now + self.horizon)

        started: List[JobRequest] = []
        free = state.free_processors
        blocked = False
        for request in state.queue:
            duration = max(request.estimate, 1)
            anchor = profile.earliest_start(request.processors, duration)
            profile.remove(anchor, anchor + duration, request.processors)
            if anchor <= state.now and self.job_fits_now(state, request, free):
                if blocked:
                    count("jobs_backfilled")
                started.append(request)
                free -= request.processors
            else:
                blocked = True
        return started


# ----------------------------------------------------------------------
# property test: FreeSpace vs the reference, operation by operation
# ----------------------------------------------------------------------
op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["reserve", "query_free", "query_min", "query_earliest"]),
        st.integers(min_value=0, max_value=500),  # start
        st.integers(min_value=1, max_value=400),  # duration
        st.integers(min_value=0, max_value=32),  # processors
    ),
    min_size=1,
    max_size=40,
)


class TestFreeSpaceMatchesReference:
    @settings(max_examples=200, deadline=None)
    @given(ops=op_strategy, now=st.integers(min_value=0, max_value=50))
    def test_random_operations_agree(self, ops, now):
        total = 32
        fs = FreeSpace(total, now=float(now))
        ref = ReferenceProfile(total, now=float(now))
        for kind, start, duration, procs in ops:
            if kind == "reserve":
                fs.reserve(start, start + duration, procs)
                ref.remove(start, start + duration, procs)
            elif kind == "query_free":
                assert fs.free_at(start) == ref.free_at(start)
            elif kind == "query_min":
                assert fs.min_free(start, start + duration) == ref.min_free(
                    start, start + duration
                )
            else:
                request = max(1, procs)
                assert fs.earliest_start(request, duration, start) == (
                    ref.earliest_start(request, duration, start)
                )
        # final sweep: the full free curves must be pointwise identical
        for t in range(now, 1000, 7):
            assert fs.free_at(t) == ref.free_at(t)

    @settings(max_examples=100, deadline=None)
    @given(
        jobs=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=32),  # processors
                st.integers(min_value=1, max_value=300),  # remaining runtime
            ),
            max_size=12,
        ),
        query=st.tuples(
            st.integers(min_value=1, max_value=32),
            st.integers(min_value=1, max_value=400),
        ),
    )
    def test_from_running_agrees(self, jobs, query):
        total = 64
        used = 0
        running = []
        for i, (procs, remaining) in enumerate(jobs):
            if used + procs > total:
                continue
            used += procs
            req = make_request(i + 1, procs, runtime=remaining)
            running.append(RunningJobInfo(request=req, start_time=0.0, expected_end=float(remaining)))
        fs = FreeSpace.from_running(total, 0.0, running)
        ref = ReferenceProfile.from_running(total, 0.0, running)
        procs, duration = query
        assert fs.earliest_start(procs, duration) == ref.earliest_start(procs, duration)
        for t in range(0, 400, 3):
            assert fs.free_at(t) == ref.free_at(t)

    def test_shim_profile_is_freespace(self):
        # The compatibility shim must expose the old API on the new core.
        profile = AvailabilityProfile(16, now=0.0)
        assert isinstance(profile, FreeSpace)
        profile.remove(10, 20, 8)
        assert profile.free_at(15) == 8
        assert profile.earliest_start(16, 15) == 20.0

    def test_slot_invariants_after_operations(self):
        fs = FreeSpace(32, now=0.0)
        rng = random.Random(7)
        for _ in range(200):
            start = rng.randrange(0, 500)
            fs.reserve(start, start + rng.randrange(1, 100), rng.randrange(0, 8))
        times = [t for t, _, _ in fs.slots()]
        frees = [f for _, _, f in fs.slots()]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        # adjacent slots are always merged: no two neighbours share a level
        assert all(a != b for a, b in zip(frees, frees[1:]))


# ----------------------------------------------------------------------
# incremental tracker == cold rebuild, across scheduling passes
# ----------------------------------------------------------------------
def _state_from_running(
    total: int, now: float, running: List[Tuple[int, int, float, float]]
) -> SchedulerState:
    """running: list of (job_id, processors, start, expected_end)."""
    infos = []
    for job_id, procs, start, end in running:
        req = make_request(job_id, procs, runtime=int(max(end - start, 1)))
        infos.append(RunningJobInfo(request=req, start_time=start, expected_end=end))
    used = sum(i.processors for i in infos)
    return SchedulerState(
        now=now,
        total_processors=total,
        free_processors=total - used,
        queue=[],
        running=infos,
    )


class TestTrackerMatchesRebuild:
    def _assert_equal_profiles(self, tracked: FreeSpace, state: SchedulerState):
        fresh = FreeSpace.from_running(
            state.total_processors, state.now, state.running
        )
        assert tracked.slots() == fresh.slots()

    def test_event_sequence(self):
        total = 64
        tracker = FreeSpaceTracker()
        timeline = [
            # (now, running set as (id, procs, start, expected_end))
            (0.0, [(1, 16, 0.0, 100.0), (2, 8, 0.0, 50.0)]),
            (10.0, [(1, 16, 0.0, 100.0), (2, 8, 0.0, 50.0), (3, 4, 10.0, 80.0)]),
            (50.0, [(1, 16, 0.0, 100.0), (3, 4, 10.0, 80.0)]),  # job 2 done
            (60.0, [(1, 16, 0.0, 120.0), (3, 4, 10.0, 80.0)]),  # job 1 overran
            (80.0, [(1, 16, 0.0, 120.0)]),
            (200.0, []),  # everything finished, machine idle
            (210.0, [(9, 64, 210.0, 500.0)]),
        ]
        for now, running in timeline:
            state = _state_from_running(total, now, running)
            tracked = tracker.sync(state)
            self._assert_equal_profiles(tracked, state)

    def test_randomized_pass_sequences(self):
        total = 128
        rng = random.Random(1999)
        for _trial in range(20):
            tracker = FreeSpaceTracker()
            now = 0.0
            running: dict = {}
            next_id = 1
            for _pass in range(40):
                now += rng.randrange(0, 50)
                # jobs whose end has passed complete (sometimes late/early)
                for job_id in list(running):
                    procs, start, end = running[job_id]
                    if end <= now or rng.random() < 0.1:
                        del running[job_id]
                    elif rng.random() < 0.1:
                        running[job_id] = (procs, start, end + rng.randrange(1, 60))
                used = sum(p for p, _, _ in running.values())
                while rng.random() < 0.6:
                    procs = rng.randrange(1, 33)
                    if used + procs > total:
                        break
                    used += procs
                    running[next_id] = (
                        procs,
                        now,
                        now + rng.randrange(1, 300),
                    )
                    next_id += 1
                state = _state_from_running(
                    total,
                    now,
                    [(j, p, s, e) for j, (p, s, e) in sorted(running.items())],
                )
                tracked = tracker.sync(state)
                self._assert_equal_profiles(tracked, state)

    def test_time_regression_triggers_rebuild(self):
        tracker = FreeSpaceTracker()
        state1 = _state_from_running(32, 100.0, [(1, 8, 0.0, 200.0)])
        tracker.sync(state1)
        state2 = _state_from_running(32, 50.0, [(1, 8, 0.0, 200.0)])
        tracked = tracker.sync(state2)  # time went backwards: full rebuild
        self._assert_equal_profiles(tracked, state2)

    def test_copy_isolates_per_pass_mutation(self):
        # The scheduler reserves into a copy; the tracked base must not see it.
        tracker = FreeSpaceTracker()
        state = _state_from_running(32, 0.0, [(1, 8, 0.0, 100.0)])
        base = tracker.sync(state)
        scratch = base.copy()
        scratch.reserve(0.0, 50.0, 24)
        assert base.free_at(10.0) == 24
        assert scratch.free_at(10.0) == 0
        self._assert_equal_profiles(tracker.sync(state), state)


# ----------------------------------------------------------------------
# end-to-end: old scheduler vs new scheduler, whole simulations
# ----------------------------------------------------------------------
SCENARIOS = [
    # the smoke-suite context
    Scenario(workload="uniform", jobs=150, machine_size=32, load=0.7, seed=11),
    # a trimmed std-space context (lublin99, moderate + heavy load)
    Scenario(workload="lublin99", jobs=250, machine_size=128, load=0.55, seed=23),
    Scenario(workload="lublin99", jobs=250, machine_size=128, load=0.85, seed=23),
]


class TestSchedulesAreBitIdentical:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.label)
    def test_conservative_matches_reference(self, scenario):
        new = run(scenario.with_(policy="conservative"))
        old = run(
            scenario.with_(policy="conservative"), policy=ReferenceConservative()
        )
        new_jobs = [
            (j.job_id, j.start_time, j.end_time, j.processors) for j in new.result
        ]
        old_jobs = [
            (j.job_id, j.start_time, j.end_time, j.processors) for j in old.result
        ]
        assert new_jobs == old_jobs
        assert (
            new.report.counters.get("jobs_backfilled", 0)
            == old.report.counters.get("jobs_backfilled", 0)
        )
        # all schedule-derived metrics follow from identical job records
        assert new.report.mean_wait == old.report.mean_wait
        assert new.report.mean_bounded_slowdown == old.report.mean_bounded_slowdown

    def test_store_result_keys_unchanged(self):
        # Store keys derive from the scenario alone, never the metric values,
        # so cached entries keep addressing the same cells across the refactor.
        for scenario in SCENARIOS:
            cell = scenario.with_(policy="conservative")
            assert result_key(cell) == result_key(cell.with_())

    def test_new_scheduler_emits_slot_telemetry(self):
        result = run(SCENARIOS[0].with_(policy="conservative"))
        counters = result.report.counters
        assert counters.get("profile_patches", 0) > 0
        assert counters.get("slots_split", 0) > 0
        # the cold rebuild happens exactly once per run (first pass)
        assert counters.get("profile_builds") == 1

    def test_serial_runs_are_deterministic(self):
        first = run(SCENARIOS[0].with_(policy="conservative"))
        second = run(SCENARIOS[0].with_(policy="conservative"))
        assert first.report.to_json() == second.report.to_json()


class TestOutageClampEquivalence:
    def test_clamped_profile_matches_reference(self):
        # a capacity function with a dip (announced outage window)
        def capacity(start: float, end: float) -> int:
            return 8 if start < 120.0 and end > 60.0 else 32

        running = [
            (
                1,
                8,
                0.0,
                90.0,
            ),
            (2, 4, 0.0, 150.0),
        ]
        state = _state_from_running(32, 0.0, running)
        fs = FreeSpace.from_running(32, 0.0, state.running)
        fs.clamp_capacity(capacity, 400.0)
        ref = ReferenceProfile.from_running(32, 0.0, state.running)
        ref.add_capacity_limit(capacity, 400.0)
        for t in range(0, 400, 5):
            assert fs.free_at(t) == ref.free_at(t)
        for procs, duration in [(4, 10), (8, 50), (20, 30), (32, 10)]:
            assert fs.earliest_start(procs, duration) == ref.earliest_start(
                procs, duration
            )

    def test_outage_aware_conservative_matches(self):
        scenario = Scenario(
            workload="lublin99", jobs=120, machine_size=64, load=0.7, seed=5
        )
        new = run(scenario.with_(policy="conservative:outage_aware=true"))
        old = run(
            scenario.with_(policy="conservative"),
            policy=ReferenceConservative(outage_aware=True),
        )
        new_jobs = [(j.job_id, j.start_time, j.end_time) for j in new.result]
        old_jobs = [(j.job_id, j.start_time, j.end_time) for j in old.result]
        assert new_jobs == old_jobs
