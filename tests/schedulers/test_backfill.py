"""Unit tests for EASY and conservative backfilling."""

from __future__ import annotations

import pytest

from repro.evaluation import simulate
from repro.schedulers import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
)
from tests.conftest import make_job, make_workload
from tests.schedulers.util import make_request, make_state


class TestEasySelection:
    def test_fcfs_phase_starts_fitting_jobs(self):
        queue = [make_request(1, 8), make_request(2, 8)]
        state = make_state(16, queue=queue)
        started = EasyBackfillScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [1, 2]

    def test_backfills_short_job_behind_blocked_head(self):
        # 8 free; head needs 16 and must wait for the running job (ends t=100).
        running = [(make_request(99, 8, estimate=100), 0.0, 100.0)]
        queue = [
            make_request(1, 16, estimate=500),
            make_request(2, 4, runtime=50, estimate=50),   # finishes before shadow
        ]
        state = make_state(16, queue=queue, running=running)
        started = EasyBackfillScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [2]

    def test_does_not_backfill_job_that_would_delay_head(self):
        running = [(make_request(99, 8, estimate=100), 0.0, 100.0)]
        queue = [
            make_request(1, 16, estimate=500),
            make_request(2, 4, runtime=500, estimate=500),  # too long, would delay head
        ]
        state = make_state(16, queue=queue, running=running)
        assert EasyBackfillScheduler().select_jobs(state) == []

    def test_backfills_long_job_on_extra_processors(self):
        # Head needs 12 of 16; the 4 processors beyond its need may run anything.
        running = [(make_request(99, 8, estimate=100), 0.0, 100.0)]
        queue = [
            make_request(1, 12, estimate=500),
            make_request(2, 4, runtime=10_000, estimate=10_000),
        ]
        state = make_state(16, queue=queue, running=running)
        started = EasyBackfillScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [2]

    def test_extra_processors_not_double_spent(self):
        running = [(make_request(99, 8, estimate=100), 0.0, 100.0)]
        queue = [
            make_request(1, 12, estimate=500),
            make_request(2, 4, runtime=10_000, estimate=10_000),
            make_request(3, 4, runtime=10_000, estimate=10_000),
        ]
        state = make_state(16, queue=queue, running=running)
        started = EasyBackfillScheduler().select_jobs(state)
        # Only one long job fits on the 4 "extra" processors.
        assert [r.job_id for r in started] == [2]

    def test_empty_queue(self):
        assert EasyBackfillScheduler().select_jobs(make_state(16)) == []


class TestConservativeSelection:
    def test_starts_jobs_that_hold_immediate_reservations(self):
        queue = [make_request(1, 8), make_request(2, 8)]
        state = make_state(16, queue=queue)
        started = ConservativeBackfillScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [1, 2]

    def test_backfill_cannot_delay_any_reservation(self):
        running = [(make_request(99, 8, estimate=100), 0.0, 100.0)]
        queue = [
            make_request(1, 16, estimate=100),                 # reserved at t=100
            make_request(2, 12, estimate=100),                 # reserved at t=200
            make_request(3, 8, runtime=1000, estimate=1000),   # would delay job 2
        ]
        state = make_state(16, queue=queue, running=running)
        started = ConservativeBackfillScheduler().select_jobs(state)
        assert [r.job_id for r in started] == []

    def test_backfills_into_genuine_hole(self):
        running = [(make_request(99, 8, estimate=100), 0.0, 100.0)]
        queue = [
            make_request(1, 16, estimate=100),
            make_request(2, 8, runtime=100, estimate=100),  # fits in the hole before job 1
        ]
        state = make_state(16, queue=queue, running=running)
        started = ConservativeBackfillScheduler().select_jobs(state)
        assert [r.job_id for r in started] == [2]


class TestBackfillEndToEnd:
    """Replay a small workload and verify the classic relationships."""

    def _workload(self):
        jobs = [
            make_job(1, submit=0, runtime=1000, processors=24, requested_time=1000),
            make_job(2, submit=10, runtime=1000, processors=24, requested_time=1000),
            make_job(3, submit=20, runtime=100, processors=8, requested_time=100),
            make_job(4, submit=30, runtime=100, processors=8, requested_time=100),
        ]
        return make_workload(jobs, machine_size=32)

    def test_easy_backfills_small_jobs_early(self):
        workload = self._workload()
        fcfs = simulate(workload, FCFSScheduler(), machine_size=32).by_job_id()
        easy = simulate(workload, EasyBackfillScheduler(), machine_size=32).by_job_id()
        # Under FCFS the small jobs wait for job 2's turn; EASY backfills them
        # onto the 8 processors job 1 leaves free.
        assert easy[3].start_time < fcfs[3].start_time
        assert easy[4].start_time < fcfs[4].start_time
        # The head job (2) is not delayed by the backfilling.
        assert easy[2].start_time <= fcfs[2].start_time

    def test_conservative_never_worse_than_fcfs_for_head_jobs(self):
        workload = self._workload()
        fcfs = simulate(workload, FCFSScheduler(), machine_size=32).by_job_id()
        conservative = simulate(
            workload, ConservativeBackfillScheduler(), machine_size=32
        ).by_job_id()
        for job_id in (1, 2):
            assert conservative[job_id].start_time <= fcfs[job_id].start_time + 1e-9

    def test_all_jobs_complete_under_every_policy(self, lublin_workload):
        for scheduler in (FCFSScheduler(), EasyBackfillScheduler(), ConservativeBackfillScheduler()):
            result = simulate(lublin_workload, scheduler, machine_size=64)
            assert len(result.jobs) == len(lublin_workload.summary_jobs())

    def test_backfilling_improves_mean_wait_on_model_workload(self, lublin_workload):
        from repro.metrics import compute_metrics

        fcfs = compute_metrics(simulate(lublin_workload, FCFSScheduler(), machine_size=64))
        easy = compute_metrics(simulate(lublin_workload, EasyBackfillScheduler(), machine_size=64))
        assert easy.mean_wait <= fcfs.mean_wait
        assert easy.mean_bounded_slowdown <= fcfs.mean_bounded_slowdown
