"""Unit tests for the gang-scheduling (time-slicing) simulator."""

from __future__ import annotations

import pytest

from repro.evaluation import simulate
from repro.metrics import compute_metrics
from repro.schedulers import EasyBackfillScheduler, GangSimulation, simulate_gang
from tests.conftest import make_job, make_workload


class TestSingleJobs:
    def test_single_job_runs_at_full_speed(self):
        workload = make_workload([make_job(1, submit=0, runtime=100, processors=8)])
        result = simulate_gang(workload, machine_size=16, max_slots=4)
        job = result.jobs[0]
        assert job.start_time == 0
        assert job.end_time == pytest.approx(100.0)

    def test_two_jobs_in_same_slot_do_not_slow_each_other(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=8),
            make_job(2, submit=0, runtime=100, processors=8),
        ]
        result = simulate_gang(make_workload(jobs), machine_size=16, max_slots=4)
        for job in result.jobs:
            assert job.end_time == pytest.approx(100.0)

    def test_two_slots_share_the_machine(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=16),
            make_job(2, submit=0, runtime=100, processors=16),
        ]
        result = simulate_gang(
            make_workload(jobs), machine_size=16, max_slots=4, context_switch_overhead=0.0
        )
        # Both jobs time-share: each runs at half speed until one finishes.
        ends = sorted(j.end_time for j in result.jobs)
        assert ends[0] == pytest.approx(200.0)
        assert ends[1] == pytest.approx(200.0)

    def test_context_switch_overhead_stretches_runtimes(self):
        jobs = [
            make_job(1, submit=0, runtime=100, processors=16),
            make_job(2, submit=0, runtime=100, processors=16),
        ]
        without = simulate_gang(
            make_workload(jobs), machine_size=16, max_slots=4, context_switch_overhead=0.0
        )
        with_overhead = simulate_gang(
            make_workload(jobs), machine_size=16, max_slots=4, context_switch_overhead=0.1
        )
        assert max(j.end_time for j in with_overhead.jobs) > max(
            j.end_time for j in without.jobs
        )


class TestMatrixBehaviour:
    def test_multiprogramming_level_bounds_slots(self):
        jobs = [make_job(i + 1, submit=0, runtime=100, processors=16) for i in range(4)]
        result = simulate_gang(make_workload(jobs), machine_size=16, max_slots=2,
                               context_switch_overhead=0.0)
        # Only two can run at once; the other two wait in queue, so the last
        # completions are later than with four slots.
        four_slots = simulate_gang(make_workload(jobs), machine_size=16, max_slots=4,
                                   context_switch_overhead=0.0)
        assert max(j.end_time for j in result.jobs) >= max(j.end_time for j in four_slots.jobs)

    def test_all_jobs_complete(self, lublin_workload):
        result = simulate_gang(lublin_workload, machine_size=64, max_slots=3)
        assert len(result.jobs) == len(lublin_workload.summary_jobs())

    def test_gang_cuts_wait_but_stretches_runtimes(self, lublin_workload):
        gang = compute_metrics(simulate_gang(lublin_workload, machine_size=64, max_slots=5))
        easy = compute_metrics(
            simulate(lublin_workload, EasyBackfillScheduler(), machine_size=64)
        )
        # The defining trade-off of time slicing: far lower wait times...
        assert gang.mean_wait < easy.mean_wait
        # ...but individual executions take longer than their dedicated runtime.
        gang_result = simulate_gang(lublin_workload, machine_size=64, max_slots=5)
        by_id = gang_result.by_job_id()
        stretched = [
            by_id[j.job_number].run_time >= j.run_time * 0.999
            for j in lublin_workload.summary_jobs()
            if j.job_number in by_id and j.run_time > 0
        ]
        assert all(stretched)

    def test_oversized_jobs_skipped_and_counted(self):
        jobs = [make_job(1, submit=0, runtime=10, processors=64)]
        result = simulate_gang(make_workload(jobs), machine_size=16)
        assert len(result.jobs) == 0
        assert result.metadata["skipped_too_large"] == 1

    def test_invalid_parameters_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            GangSimulation(tiny_workload, machine_size=16, max_slots=0)
        with pytest.raises(ValueError):
            GangSimulation(tiny_workload, machine_size=16, context_switch_overhead=1.5)
