"""Unit tests for the availability profile used by backfilling and predictions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.base import AvailabilityProfile
from tests.schedulers.util import make_request, make_state


class TestProfileBasics:
    def test_initially_fully_free(self):
        profile = AvailabilityProfile(32, now=0.0)
        assert profile.free_at(0) == 32
        assert profile.free_at(10_000) == 32

    def test_remove_reduces_free_in_window_only(self):
        profile = AvailabilityProfile(32, now=0.0)
        profile.remove(10, 20, 8)
        assert profile.free_at(5) == 32
        assert profile.free_at(10) == 24
        assert profile.free_at(19.9) == 24
        assert profile.free_at(20) == 32

    def test_overlapping_removals_stack(self):
        profile = AvailabilityProfile(32, now=0.0)
        profile.remove(0, 100, 8)
        profile.remove(50, 150, 8)
        assert profile.free_at(75) == 16
        assert profile.free_at(125) == 24

    def test_min_free_over_window(self):
        profile = AvailabilityProfile(32, now=0.0)
        profile.remove(10, 20, 30)
        assert profile.min_free(0, 30) == 2
        assert profile.min_free(20, 30) == 32

    def test_zero_length_removal_is_noop(self):
        profile = AvailabilityProfile(8, now=0.0)
        profile.remove(10, 10, 4)
        assert profile.free_at(10) == 8

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            AvailabilityProfile(0, now=0.0)
        profile = AvailabilityProfile(8, now=0.0)
        with pytest.raises(ValueError):
            profile.remove(0, 10, -1)


class TestEarliestStart:
    def test_immediate_start_when_free(self):
        profile = AvailabilityProfile(32, now=0.0)
        assert profile.earliest_start(16, 100) == 0.0

    def test_start_deferred_until_capacity_frees(self):
        profile = AvailabilityProfile(32, now=0.0)
        profile.remove(0, 100, 24)  # only 8 free until t=100
        assert profile.earliest_start(16, 50) == 100.0

    def test_start_fits_in_gap_between_busy_periods(self):
        profile = AvailabilityProfile(32, now=0.0)
        profile.remove(0, 100, 24)
        profile.remove(200, 300, 24)
        # 16 processors for 100 s fit exactly in the [100, 200) gap.
        assert profile.earliest_start(16, 100) == 100.0
        # ... but a 150 s job does not; it must wait for the second period to end.
        assert profile.earliest_start(16, 150) == 300.0

    def test_not_before_constraint(self):
        profile = AvailabilityProfile(32, now=0.0)
        assert profile.earliest_start(4, 10, not_before=500.0) == 500.0

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityProfile(8, now=0.0).earliest_start(16, 10)

    def test_from_running_builds_expected_profile(self):
        running_request = make_request(1, processors=24, runtime=100, estimate=100)
        state = make_state(32, running=[(running_request, 0.0, 100.0)])
        profile = AvailabilityProfile.from_running(32, 0.0, state.running)
        assert profile.free_at(50) == 8
        assert profile.free_at(100) == 32

    @given(
        removals=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),   # start
                st.integers(min_value=1, max_value=200),   # duration
                st.integers(min_value=1, max_value=16),    # processors
            ),
            max_size=8,
        ),
        request=st.tuples(
            st.integers(min_value=1, max_value=32),
            st.integers(min_value=1, max_value=300),
        ),
    )
    @settings(max_examples=75, deadline=None)
    def test_earliest_start_window_really_has_capacity(self, removals, request):
        """The anchor returned by earliest_start always satisfies the request."""
        profile = AvailabilityProfile(32, now=0.0)
        for start, duration, processors in removals:
            profile.remove(start, start + duration, min(processors, 32))
        processors, duration = request
        anchor = profile.earliest_start(processors, duration)
        assert profile.min_free(anchor, anchor + duration) >= processors
