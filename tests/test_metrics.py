"""Unit tests for metrics, objective functions, and ranking comparison."""

from __future__ import annotations

import pytest

from repro.evaluation.results import JobResult, SimulationResult
from repro.metrics import (
    MAXIMIZE_METRICS,
    ObjectiveFunction,
    compute_metrics,
    confidence_interval,
    kendall_tau,
    rank_schedulers,
    ranking_agreement,
)
from tests.conftest import make_job


def job_result(job_id, submit=0.0, start=0.0, end=100.0, processors=4, killed=False):
    return JobResult(
        job=make_job(job_id),
        submit_time=submit,
        start_time=start,
        end_time=end,
        processors=processors,
        killed=killed,
    )


def simulation(name="test", machine=16, jobs=None, available=None):
    return SimulationResult(
        scheduler_name=name,
        machine_size=machine,
        jobs=jobs or [],
        available_node_seconds=available,
    )


class TestJobResult:
    def test_derived_times(self):
        r = job_result(1, submit=10, start=60, end=160)
        assert r.wait_time == 50
        assert r.run_time == 100
        assert r.response_time == 150
        assert r.slowdown() == pytest.approx(1.5)
        assert r.area == 400

    def test_bounded_slowdown_clamps(self):
        r = job_result(1, submit=0, start=100, end=101)
        assert r.bounded_slowdown(tau=10) == pytest.approx(101 / 10)
        assert r.slowdown() == pytest.approx(101.0)

    def test_zero_runtime_slowdown_infinite(self):
        r = job_result(1, start=50, end=50)
        assert r.slowdown() == float("inf")
        assert r.bounded_slowdown() >= 1.0


class TestComputeMetrics:
    def test_aggregates(self):
        jobs = [
            job_result(1, submit=0, start=0, end=100, processors=8),
            job_result(2, submit=0, start=100, end=200, processors=8),
        ]
        report = compute_metrics(simulation(jobs=jobs))
        assert report.jobs == 2
        assert report.mean_wait == pytest.approx(50.0)
        assert report.mean_response == pytest.approx(150.0)
        assert report.makespan == 200.0
        # 1600 processor-seconds over a 16 x 200 window.
        assert report.utilization == pytest.approx(0.5)
        assert report.throughput_per_hour == pytest.approx(2 / (200 / 3600))

    def test_killed_jobs_counted_separately(self):
        jobs = [job_result(1), job_result(2, killed=True)]
        report = compute_metrics(simulation(jobs=jobs))
        assert report.jobs == 1
        assert report.killed == 1

    def test_utilization_uses_available_capacity_when_given(self):
        jobs = [job_result(1, start=0, end=100, processors=8)]
        full = compute_metrics(simulation(jobs=jobs))
        reduced = compute_metrics(simulation(jobs=jobs, available=800.0))
        assert reduced.utilization == pytest.approx(1.0)
        assert full.utilization == pytest.approx(0.5)

    def test_empty_simulation(self):
        report = compute_metrics(simulation(jobs=[]))
        assert report.jobs == 0
        assert report.mean_wait == 0.0
        assert report.utilization == 0.0

    def test_value_lookup_and_as_dict(self):
        report = compute_metrics(simulation(jobs=[job_result(1)]))
        assert report.value("mean_wait") == report.mean_wait
        with pytest.raises(KeyError):
            report.value("no_such_metric")
        assert "utilization" in report.as_dict()

    def test_counters_ride_along_and_are_addressable(self):
        result = simulation(jobs=[job_result(1)])
        result.counters.update({"sched_passes": 7, "jobs_backfilled": 3})
        report = compute_metrics(result)
        assert report.counters == {"jobs_backfilled": 3, "sched_passes": 7}
        assert report.value("counters.sched_passes") == 7.0
        # a counter the run never emitted reads 0, not KeyError — policies
        # differ in which counters they produce
        assert report.value("counters.never_emitted") == 0.0


class TestConfidenceInterval:
    def test_mean_and_width(self):
        mean, half = confidence_interval([10.0] * 100)
        assert mean == 10.0
        assert half == 0.0

    def test_width_shrinks_with_samples(self):
        small = confidence_interval(list(range(10)))[1]
        large = confidence_interval(list(range(10)) * 100)[1]
        assert large < small

    def test_degenerate_inputs(self):
        assert confidence_interval([]) == (0.0, 0.0)
        assert confidence_interval([5.0])[1] == 0.0


def report_with(name, **values):
    """A MetricsReport with selected fields overridden (others zero)."""
    base = dict(
        scheduler=name,
        jobs=100,
        killed=0,
        mean_wait=0.0,
        median_wait=0.0,
        mean_response=0.0,
        median_response=0.0,
        mean_slowdown=0.0,
        mean_bounded_slowdown=0.0,
        median_bounded_slowdown=0.0,
        p90_bounded_slowdown=0.0,
        utilization=0.0,
        throughput_per_hour=0.0,
        makespan=0.0,
        total_area=0.0,
    )
    base.update(values)
    from repro.metrics.basic import MetricsReport

    return MetricsReport(**base)


class TestObjectiveAndRanking:
    def test_rank_by_minimize_metric(self):
        reports = [report_with("a", mean_wait=100), report_with("b", mean_wait=10)]
        assert rank_schedulers(reports, metric="mean_wait") == ["b", "a"]

    def test_rank_by_maximize_metric(self):
        reports = [report_with("a", utilization=0.5), report_with("b", utilization=0.9)]
        assert rank_schedulers(reports, metric="utilization") == ["b", "a"]
        assert "utilization" in MAXIMIZE_METRICS

    def test_rank_requires_exactly_one_criterion(self):
        reports = [report_with("a")]
        with pytest.raises(ValueError):
            rank_schedulers(reports)
        with pytest.raises(ValueError):
            rank_schedulers(reports, metric="mean_wait", objective=ObjectiveFunction({"mean_wait": 1.0}))

    def test_objective_weights_change_winner(self):
        fast_but_wasteful = report_with("fast", mean_wait=10, utilization=0.4)
        slow_but_packed = report_with("packed", mean_wait=100, utilization=0.95)
        reports = [fast_but_wasteful, slow_but_packed]
        wait_heavy = ObjectiveFunction({"mean_wait": 1.0, "utilization": 0.01},
                                       scales={"mean_wait": 100, "utilization": 1})
        util_heavy = ObjectiveFunction({"mean_wait": 0.01, "utilization": 1.0},
                                       scales={"mean_wait": 100, "utilization": 1})
        assert rank_schedulers(reports, objective=wait_heavy)[0] == "fast"
        assert rank_schedulers(reports, objective=util_heavy)[0] == "packed"

    def test_objective_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveFunction({"nonexistent": 1.0})
        with pytest.raises(ValueError):
            ObjectiveFunction({})

    def test_normalized_to_reference(self):
        reference = report_with("ref", mean_wait=200.0, utilization=0.8)
        objective = ObjectiveFunction({"mean_wait": 1.0, "utilization": 1.0}).normalized_to(reference)
        cost = objective.evaluate(reference)
        # Normalized reference: +1 (wait) - 1 (utilization) = 0.
        assert cost == pytest.approx(0.0)

    def test_kendall_tau_extremes(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_kendall_tau_requires_same_items(self):
        with pytest.raises(ValueError):
            kendall_tau(["a"], ["b"])

    def test_ranking_agreement_matrix(self):
        reports = [
            report_with("a", mean_wait=10, utilization=0.9),
            report_with("b", mean_wait=20, utilization=0.5),
        ]
        agreement = ranking_agreement(reports, ["mean_wait", "utilization"])
        assert agreement[("mean_wait", "utilization")] == 1.0
