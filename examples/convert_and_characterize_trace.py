"""Convert a raw accounting log to SWF, anonymize it, and characterize the workload.

This example plays the role of a site administrator adopting the standard:

1. a PBS/NQS-style accounting CSV (here: synthesized in-memory so the example
   is self-contained) is converted to the Standard Workload Format,
2. user / group / executable identities are anonymized to incremental numbers,
3. the trace is validated against the consistency rules,
4. postulated feedback dependencies (fields 17/18) are inserted,
5. the workload is characterized: size histogram, runtime distribution,
   interarrival variability, per-user activity.

Run with::

    python examples/convert_and_characterize_trace.py
"""

from __future__ import annotations

import io
import csv

import numpy as np

from repro.core.swf import (
    annotate_feedback,
    convert_accounting_csv,
    summarize,
    validate,
    write_swf_text,
)
from repro.evaluation import format_table
from repro.simulation import make_rng


def synthesize_raw_accounting_csv(jobs: int = 1500, seed: int = 7) -> str:
    """Produce a raw accounting CSV of the kind sites actually keep.

    User names, group names, queue names, and absolute UNIX timestamps — all
    the things the SWF conversion normalizes away.
    """
    rng = make_rng(seed)
    users = [f"user{i:02d}" for i in range(25)]
    groups = {u: f"group{int(i // 5)}" for i, u in enumerate(users)}
    queues = ["batch", "long", "interactive"]
    executables = [f"app_{c}" for c in "abcdefgh"]

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        "job_id user group queue submit_ts start_ts end_ts processors requested_processors "
        "requested_seconds mem_kb requested_mem_kb cpu_seconds exit_status executable partition".split()
    )
    t = 1_000_000_000  # an arbitrary absolute epoch
    for i in range(jobs):
        t += int(rng.exponential(700))
        user = users[int(rng.zipf(1.6)) % len(users)]
        queue = queues[int(rng.choice([0, 0, 0, 1, 2]))]
        processors = int(2 ** rng.integers(0, 8))
        runtime = int(rng.lognormal(mean=7.0, sigma=1.6)) + 1
        wait = int(rng.exponential(400)) if queue != "interactive" else 0
        writer.writerow(
            [
                f"J{i:06d}",
                user,
                groups[user],
                queue,
                t,
                t + wait,
                t + wait + runtime,
                processors,
                processors,
                runtime * 3,
                int(rng.uniform(1, 64)) * 1024,
                65536,
                int(runtime * rng.uniform(0.5, 1.0)),
                0 if rng.random() > 0.05 else 137,
                executables[int(rng.integers(0, len(executables)))],
                "main",
            ]
        )
    return buffer.getvalue()


def main() -> None:
    raw = synthesize_raw_accounting_csv()
    print(f"raw accounting log: {len(raw.splitlines()) - 1} records")

    # 1-2. Convert and anonymize (the converter renumbers identities itself).
    workload = convert_accounting_csv(
        raw, computer="IBM SP2 (256 nodes)", installation="Example Computing Center", max_nodes=256
    )

    # 3. Validate against the standard's consistency rules.
    report = validate(workload)
    print(f"converted to SWF: {len(workload)} jobs — validation: {report.summary()}")

    # 4. Insert postulated feedback dependencies.
    annotated, feedback_stats = annotate_feedback(workload, max_think_time=20 * 60)
    print(
        f"feedback annotation: {feedback_stats.annotated_jobs} dependent jobs "
        f"({feedback_stats.annotated_fraction:.1%}), {feedback_stats.sessions} sessions, "
        f"mean think time {feedback_stats.mean_think_time:.0f} s"
    )

    # 5. Characterize the workload.
    stats = summarize(annotated, machine_size=256)
    print()
    print(format_table([stats.as_dict()]))

    sizes = sorted(stats.size_histogram.items())
    print()
    print("job-size histogram (size: jobs):")
    for size, count in sizes[:12]:
        print(f"  {size:>4}: {'#' * max(1, count // 20)} {count}")

    print()
    print("first lines of the standard-format file:")
    for line in write_swf_text(annotated).splitlines()[:12]:
        print(" ", line)


if __name__ == "__main__":
    main()
