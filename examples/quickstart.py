"""Quickstart: generate a standard workload, evaluate schedulers, report metrics.

This is the paper's core workflow in ~40 lines:

1. generate a workload with a published model (Lublin '99),
2. save it in the Standard Workload Format and check it against the
   consistency rules,
3. replay it through three machine schedulers,
4. report the standard metrics and show how the ranking depends on the metric.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FCFSScheduler,
    Lublin99Model,
    compute_metrics,
    parse_swf,
    rank_schedulers,
    simulate,
    validate,
    write_swf,
)
from repro.evaluation import format_table


def main() -> None:
    machine_size = 128

    # 1. Generate a workload at 70% offered load.
    model = Lublin99Model(machine_size=machine_size)
    workload = model.generate_with_load(2000, target_load=0.7, seed=42)
    print(f"generated {len(workload)} jobs, offered load {workload.offered_load():.2f}")

    # 2. Persist it as an SWF file and verify the round trip + consistency rules.
    path = Path(tempfile.gettempdir()) / "lublin99.swf"
    write_swf(workload, path)
    loaded = parse_swf(path)
    report = validate(loaded)
    print(f"wrote {path} — validation: {report.summary()}")

    # 3. Replay it through three scheduling policies.
    reports = []
    for scheduler in (FCFSScheduler(), EasyBackfillScheduler(), ConservativeBackfillScheduler()):
        result = simulate(loaded, scheduler, machine_size=machine_size)
        reports.append(compute_metrics(result))

    # 4. Report the standard metrics.
    print()
    print(format_table([r.as_dict() for r in reports]))
    print()
    print("ranking by mean response time :", " > ".join(rank_schedulers(reports, metric="mean_response")))
    print("ranking by bounded slowdown   :", " > ".join(rank_schedulers(reports, metric="mean_bounded_slowdown")))
    print("ranking by utilization        :", " > ".join(rank_schedulers(reports, metric="utilization")))


if __name__ == "__main__":
    main()
