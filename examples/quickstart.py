"""Quickstart: scenarios in, metrics out — the paper's core workflow.

This is the unified-API version of the paper's evaluation loop:

1. describe each run as a :class:`repro.Scenario` — a workload spec, a policy
   spec, and the conditions (machine size, offered load, seed),
2. fan the scenarios out with :func:`repro.run_many` (policies of *any*
   simulator family: backfilling, priority, gang time-slicing),
3. report the standard metrics and show how the ranking depends on the metric,
4. round-trip a scenario through JSON — the exact dict a config file or a
   distributed worker would consume.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro import Scenario, rank_schedulers, run_many
from repro.evaluation import format_table


def main() -> None:
    base = Scenario(
        workload="lublin99:jobs=2000,seed=42",
        machine_size=128,
        load=0.7,
    )

    # 1-2. The same workload through four policies — including gang
    # scheduling, which runs on its own time-slicing simulator but plugs into
    # the same entrypoint.  workers=2 fans the runs out over processes.
    scenarios = [
        base.with_(policy=policy)
        for policy in ("fcfs", "easy", "conservative", "gang:slots=5")
    ]
    results = run_many(scenarios, workers=2)

    # 3. Report the standard metrics.
    print(format_table([r.row() for r in results]))
    reports = [r.report for r in results[:3]]  # rank the space-sharing trio
    print()
    print("ranking by mean response time :", " > ".join(rank_schedulers(reports, metric="mean_response")))
    print("ranking by bounded slowdown   :", " > ".join(rank_schedulers(reports, metric="mean_bounded_slowdown")))
    print("ranking by utilization        :", " > ".join(rank_schedulers(reports, metric="utilization")))

    # 4. Every scenario round-trips through JSON exactly.
    blob = json.dumps(scenarios[1].to_dict(), indent=2)
    assert Scenario.from_dict(json.loads(blob)) == scenarios[1]
    print()
    print("scenario as JSON (feed this to `python -m repro.cli run`):")
    print(blob)


if __name__ == "__main__":
    main()
