"""The trace catalog: content-addressed traces and the transformation pipeline.

The paper anchors every evaluation to production workload logs replayed
under varied conditions.  This example walks the trace subsystem end to end:

1. name a catalog trace with a one-line spec and inspect its content digest,
2. grow a transformation pipeline — load rescaling (the paper's
   load-variation methodology), a one-week slice, a size filter — and watch
   the digest change with every step,
3. materialize through the on-disk cache (``$REPRO_TRACE_CACHE``): the
   second materialization parses one canonical SWF file instead of
   regenerating,
4. hand the spec to the Scenario API — ``run()`` resolves ``trace:`` specs
   through the same pipeline, so an experiment's workload is pinned by
   content, not by a path that might change under it.

Run with::

    python examples/trace_catalog.py
"""

from __future__ import annotations

from repro import Scenario, run
from repro.evaluation import format_table
from repro.traces import TraceCache, trace_from_spec


def main() -> None:
    # 1. A catalog trace is a spec string; its digest is a content address.
    base = trace_from_spec("trace:ctc-sp2,jobs=1500,seed=7")
    print(f"base trace   {base.spec}")
    print(f"  digest     {base.digest}")

    # 2. Transforms compose in order, and every step is part of the digest:
    # the rescaled-then-sliced trace and the sliced-then-rescaled trace are
    # different artifacts with different digests.
    week_heavy = base.scale_to_load(1.1).slice_window(0, 7 * 86400)
    heavy_week = base.slice_window(0, 7 * 86400).scale_to_load(1.1)
    big_jobs = week_heavy.filter_field("min_size", 16)
    for trace in (week_heavy, heavy_week, big_jobs):
        print(f"pipeline     {trace.spec}\n  digest     {trace.digest[:16]}…")

    # 3. Materialization goes through the content-addressed cache.
    cache = TraceCache()
    workload = week_heavy.materialize(cache=cache)
    again = week_heavy.materialize(cache=cache)
    print(
        f"materialized {len(workload)} jobs "
        f"(cache hits {cache.hits}, builds {cache.misses}); "
        f"identical: {workload == again}"
    )

    # 4. The same spec drives the Scenario API: the workload a run sees is
    # exactly the artifact the digest names.
    rows = []
    for policy in ("fcfs", "easy"):
        result = run(Scenario(workload=week_heavy.spec, policy=policy))
        rows.append(result.row())
    print(format_table(rows))


if __name__ == "__main__":
    main()
