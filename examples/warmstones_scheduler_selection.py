"""WARMstones: evaluating application schedulers on program graphs.

The fourth usage scenario Section 4.3 lists: build an off-line table of
(application structure, system configuration) -> best scheduling algorithm,
then look up a "good" algorithm for a new application at run time.

This example:

1. builds the micro-benchmark suite and the canonical system representations,
2. produces the full scorecard (every mapper on every graph and system),
3. builds the scheduler-selection table,
4. uses the table to recommend a mapper for a new, held-out application and
   compares the recommendation against exhaustive evaluation.

Run with::

    python examples/warmstones_scheduler_selection.py
"""

from __future__ import annotations

from collections import Counter

from repro.appsched import Warmstones, random_dag
from repro.evaluation import format_table


def main() -> None:
    environment = Warmstones()
    print(
        f"benchmark suite: {len(environment.graphs)} graphs, "
        f"{len(environment.systems)} canonical systems, "
        f"{len(environment.mappers)} schedulers"
    )

    # 2. Full scorecard.
    entries = environment.scorecard()
    rows = [
        {
            "graph": e.graph,
            "system": e.system,
            "mapper": e.mapper,
            "makespan_s": round(e.makespan, 1),
            "speedup": round(e.speedup, 2),
        }
        for e in entries
    ]
    print()
    print(format_table(rows[:16]))
    print(f"... ({len(rows)} scorecard entries in total)")

    # Winners per (graph, system).
    best = {}
    for e in entries:
        key = (e.graph, e.system)
        if key not in best or e.makespan < best[key].makespan:
            best[key] = e
    print()
    print("wins per scheduler:", dict(Counter(e.mapper for e in best.values())))

    # 3-4. Selection table and a recommendation for a held-out application.
    environment.build_selection_table()
    new_application = random_dag(tasks=36, layers=5, seed=2024)
    print()
    for system in environment.systems:
        recommended = environment.lookup(new_application, system)
        exhaustive_best, best_makespan = environment.best_mapper_for(new_application, system)
        recommended_mapper = next(m for m in environment.mappers if m.name == recommended)
        recommended_makespan = environment.evaluate(
            new_application, system, recommended_mapper
        ).makespan
        print(
            f"system {system.name:<28} table recommends {recommended:<12} "
            f"(makespan {recommended_makespan:9.1f} s) — exhaustive best {exhaustive_best} "
            f"({best_makespan:9.1f} s)"
        )


if __name__ == "__main__":
    main()
