"""Metacomputing: meta-scheduling with queue-wait prediction and co-allocation.

This example builds the Figure 1 hierarchy — four sites, each with its own
EASY-backfilling machine scheduler and local users, plus a meta-scheduler —
and shows the two mechanisms Sections 3 and 4 of the paper revolve around:

* queue-wait prediction as the information the meta-scheduler uses to pick a
  site, and
* advance reservations as the mechanism that makes co-allocation work.

Run with::

    python examples/grid_coallocation.py
"""

from __future__ import annotations

from repro.bench.seeds import derive_seeds
from repro.evaluation import format_table
from repro.grid import (
    CategoryMeanPredictor,
    EarliestStartMetaScheduler,
    GridSimulation,
    LeastLoadedMetaScheduler,
    MeanWaitPredictor,
    ProfilePredictor,
    Site,
    generate_meta_jobs,
    prediction_error_summary,
)
from repro.schedulers import EasyBackfillScheduler
from repro.workloads import Lublin99Model


def build_sites(count: int = 4, machine_size: int = 128, seed: int = 31):
    """Sites with mild configuration heterogeneity and their own local users."""
    sites = []
    for i, site_seed in enumerate(derive_seeds(seed, count)):
        sites.append(
            Site(
                name=f"center-{chr(ord('a') + i)}",
                machine_size=machine_size,
                scheduler=EasyBackfillScheduler(outage_aware=True),
                local_workload=Lublin99Model(machine_size=machine_size).generate_with_load(
                    400, 0.6, seed=site_seed
                ),
                speed=1.0 + 0.15 * i,
            )
        )
    return sites


def main() -> None:
    meta_jobs = generate_meta_jobs(
        150, coallocation_fraction=0.3, max_components=3, max_component_processors=64, seed=99
    )
    predictors = {
        "mean-wait": MeanWaitPredictor,
        "category-mean": CategoryMeanPredictor,
        "profile": ProfilePredictor,
    }

    rows = []
    predictor_rows = []
    for meta_scheduler, reservations in (
        (LeastLoadedMetaScheduler(), False),
        (LeastLoadedMetaScheduler(), True),
        (EarliestStartMetaScheduler(), False),
        (EarliestStartMetaScheduler(), True),
    ):
        simulation = GridSimulation(
            build_sites(),
            meta_jobs,
            meta_scheduler,
            use_reservations=reservations,
            predictors=predictors,
        )
        result = simulation.run()
        label = f"{result.meta_scheduler}{'+reservations' if reservations else ''}"
        rows.append(
            {
                "configuration": label,
                "meta_done": len(result.meta_results),
                "meta_starving": len(result.unfinished_meta_jobs),
                "coallocations_done": len(result.coallocation_results()),
                "mean_meta_wait_s": round(result.mean_meta_wait(), 0),
                "wasted_node_hours": round(result.total_wasted_node_seconds() / 3600, 0),
                "late_reservations": round(result.late_reservation_fraction(), 2),
            }
        )
        if reservations:
            for name, pairs in result.prediction_pairs.items():
                summary = prediction_error_summary(pairs)
                predictor_rows.append(
                    {
                        "configuration": label,
                        "predictor": name,
                        "mae_s": round(summary["mae"], 0),
                        "bias_s": round(summary["bias"], 0),
                        "samples": summary["count"],
                    }
                )

    print("meta-scheduling configurations:")
    print(format_table(rows))
    print()
    print("queue-wait prediction accuracy (scored on single-site meta jobs):")
    print(format_table(predictor_rows))
    print()
    print(
        "Reading: without reservations, co-allocated jobs starve waiting for all\n"
        "their components and waste the cycles of the components that did start;\n"
        "with reservations every co-allocation completes.  The profile-based\n"
        "predictor (built from the sites' availability profiles) is the kind of\n"
        "information service the paper says meta-schedulers need."
    )


if __name__ == "__main__":
    main()
