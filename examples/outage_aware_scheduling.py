"""Outage-aware scheduling: replaying a trace together with its outage log.

Section 2.2 of the paper argues that evaluations which ignore failures and
maintenance "cannot possibly be accurate".  This example:

1. generates a CTC-SP2-like synthetic archive trace,
2. generates a matching outage log (random node failures + monthly
   maintenance windows) in the proposed standard format,
3. replays the trace under EASY backfilling with
   (a) no outages, (b) outages and an outage-blind scheduler, and
   (c) outages and an outage-aware scheduler that drains ahead of announced
   windows — each condition one :class:`repro.Scenario` pointing at the
   trace and the on-disk outage log,
4. prints the resulting metrics side by side.

Run with::

    python examples/outage_aware_scheduling.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Scenario, run_many, synthetic_archive, write_swf
from repro.core.outage import OutageModel, generate_outages, write_outage_log
from repro.evaluation import format_table


def main() -> None:
    machine_size = 430  # the CTC SP2's size
    trace = synthetic_archive("ctc-sp2", jobs=2000, seed=17)
    trace_path = Path(tempfile.gettempdir()) / "ctc-sp2.swf"
    write_swf(trace, trace_path)
    print(f"trace: {trace.name}, {len(trace)} jobs, load {trace.offered_load():.2f}")

    outages = generate_outages(
        machine_size,
        trace.span(),
        model=OutageModel(
            mtbf_seconds=4 * 24 * 3600,
            max_nodes_per_failure=8,
            maintenance_interval_seconds=30 * 24 * 3600,
            maintenance_duration_seconds=12 * 3600,
            maintenance_notice_seconds=7 * 24 * 3600,
        ),
        seed=17,
    )
    outage_path = Path(tempfile.gettempdir()) / "ctc-sp2.outages"
    write_outage_log(outages, outage_path)
    print(
        f"outage log: {len(outages)} events "
        f"({len(outages.unscheduled())} failures, {len(outages.scheduled())} maintenance windows) "
        f"written to {outage_path}"
    )

    base = Scenario(workload=str(trace_path), machine_size=machine_size)
    scenarios = [
        base.with_(name="no outages", policy="easy"),
        base.with_(name="outages, blind scheduler", policy="easy",
                   outages=str(outage_path)),
        base.with_(name="outages, drained scheduler", policy="easy:outage_aware=true",
                   outages=str(outage_path)),
    ]
    results = run_many(scenarios)

    rows = [
        {
            "configuration": sr.scenario.name,
            "mean_wait_s": round(sr.report.mean_wait, 1),
            "mean_bounded_slowdown": round(sr.report.mean_bounded_slowdown, 2),
            "utilization": round(sr.report.utilization, 3),
            "jobs_killed_by_outages": sr.result.outage_kills,
        }
        for sr in results
    ]

    print()
    print(format_table(rows))
    print()
    print(
        "Reading: the idealized no-outage replay overstates the utilization the\n"
        "machine can deliver, the outage-blind scheduler loses work whenever a\n"
        "window or failure arrives, and draining trades some wait time for\n"
        "(almost) no killed jobs — which is why the paper wants outage logs\n"
        "distributed alongside workload traces."
    )


if __name__ == "__main__":
    main()
